package pagefile

import (
	"encoding/binary"
	"fmt"
)

// Slotted data page layout.
//
//	offset  size  field
//	0       2     nSlots
//	2       2     heapOff   (lowest used heap byte; heap grows downward from PageSize)
//	4       1     segment
//	5       1     flags     (flagOverflow marks a whole-page overflow extent)
//	6       2     reserved
//	8       ...   slot directory, 6 bytes per slot: off u16, cap u16, len u16
//	...     ...   free space
//	heapOff ...   record heap (grows downward)
//
// A slot with len == slotFree is free; its cap bytes at off remain reserved
// and are reused by later inserts that fit.

const (
	pageHdrSize = 8
	slotSize    = 6
	slotFree    = 0xFFFF

	flagOverflow = 1

	// MaxInline is the largest record stored directly in a slotted page.
	// Larger records go through the overflow-extent path in Store.
	MaxInline = PageSize - pageHdrSize - slotSize

	// overflowCap is the usable payload of one overflow extent page.
	overflowCap = PageSize - pageHdrSize
)

type slot struct {
	off, cap, length uint16
}

func pageNSlots(p []byte) int  { return int(binary.LittleEndian.Uint16(p[0:2])) }
func pageHeapOff(p []byte) int { return int(binary.LittleEndian.Uint16(p[2:4])) }
func pageSeg(p []byte) uint8   { return p[4] }
func pageFlags(p []byte) uint8 { return p[5] }

func setPageNSlots(p []byte, n int)  { binary.LittleEndian.PutUint16(p[0:2], uint16(n)) }
func setPageHeapOff(p []byte, v int) { binary.LittleEndian.PutUint16(p[2:4], uint16(v)) }

// initPage formats a zeroed buffer as an empty slotted page.
func initPage(p []byte, seg uint8, flags uint8) {
	clear(p[:PageSize])
	setPageNSlots(p, 0)
	// heapOff of 0 encodes PageSize (an empty heap) since PageSize does not
	// fit in 16 bits.
	setPageHeapOff(p, 0)
	p[4] = seg
	p[5] = flags
}

func heapStart(p []byte) int {
	h := pageHeapOff(p)
	if h == 0 {
		return PageSize
	}
	return h
}

func getSlot(p []byte, i int) slot {
	base := pageHdrSize + i*slotSize
	return slot{
		off:    binary.LittleEndian.Uint16(p[base:]),
		cap:    binary.LittleEndian.Uint16(p[base+2:]),
		length: binary.LittleEndian.Uint16(p[base+4:]),
	}
}

func putSlot(p []byte, i int, s slot) {
	base := pageHdrSize + i*slotSize
	binary.LittleEndian.PutUint16(p[base:], s.off)
	binary.LittleEndian.PutUint16(p[base+2:], s.cap)
	binary.LittleEndian.PutUint16(p[base+4:], s.length)
}

// pageFreeSpace returns the bytes available for a brand-new slot+record.
func pageFreeSpace(p []byte) int {
	low := pageHdrSize + pageNSlots(p)*slotSize
	return heapStart(p) - low
}

// pageInsert places data in the page, reserving capacity bytes of heap for
// the record (capacity >= len(data); allocator size classes reserve slack
// here). It reuses a free slot whose reserved capacity fits, or carves a new
// slot, returning the slot number and whether the insert succeeded.
func pageInsert(p []byte, data []byte, capacity int) (int, bool) {
	n := len(data)
	if capacity < n {
		capacity = n
	}
	if capacity > MaxInline {
		if n > MaxInline {
			return 0, false
		}
		capacity = MaxInline
	}
	nSlots := pageNSlots(p)
	// First fit over freed slots: their heap space is already reserved.
	for i := 0; i < nSlots; i++ {
		s := getSlot(p, i)
		if s.length == slotFree && int(s.cap) >= n {
			copy(p[s.off:int(s.off)+n], data)
			s.length = uint16(n)
			putSlot(p, i, s)
			return i, true
		}
	}
	if pageFreeSpace(p) < slotSize+capacity {
		return 0, false
	}
	newHeap := heapStart(p) - capacity
	copy(p[newHeap:newHeap+n], data)
	putSlot(p, nSlots, slot{off: uint16(newHeap), cap: uint16(capacity), length: uint16(n)})
	setPageNSlots(p, nSlots+1)
	setPageHeapOff(p, newHeap)
	return nSlots, true
}

// pageRead returns the record in slot i. The slice aliases the page buffer.
func pageRead(p []byte, i int) ([]byte, error) {
	if i >= pageNSlots(p) {
		return nil, fmt.Errorf("pagefile: slot %d out of range (%d slots)", i, pageNSlots(p))
	}
	s := getSlot(p, i)
	if s.length == slotFree {
		return nil, fmt.Errorf("pagefile: slot %d is free", i)
	}
	return p[s.off : int(s.off)+int(s.length)], nil
}

// pageUpdate overwrites slot i in place if the reserved capacity allows,
// reporting whether it did.
func pageUpdate(p []byte, i int, data []byte) (bool, error) {
	if i >= pageNSlots(p) {
		return false, fmt.Errorf("pagefile: slot %d out of range (%d slots)", i, pageNSlots(p))
	}
	s := getSlot(p, i)
	if s.length == slotFree {
		return false, fmt.Errorf("pagefile: update of free slot %d", i)
	}
	if len(data) > int(s.cap) {
		return false, nil
	}
	copy(p[s.off:int(s.off)+len(data)], data)
	s.length = uint16(len(data))
	putSlot(p, i, s)
	return true, nil
}

// pageFreeSlot marks slot i free, keeping its capacity reserved for reuse.
func pageFreeSlot(p []byte, i int) error {
	if i >= pageNSlots(p) {
		return fmt.Errorf("pagefile: slot %d out of range (%d slots)", i, pageNSlots(p))
	}
	s := getSlot(p, i)
	if s.length == slotFree {
		return fmt.Errorf("pagefile: double free of slot %d", i)
	}
	s.length = slotFree
	putSlot(p, i, s)
	return nil
}
