// Package pagefile implements the page-structured persistent substrate that
// both the ostore and texas storage managers are built on: fixed-size pages
// in a backing file, slotted data pages, per-segment object tables with
// stable logical OIDs, and large-record overflow chains.
//
// The split of responsibilities mirrors the paper's setting. What differs
// between ObjectStore and Texas is *how pages become resident and when they
// are written back* (page server + locks + log vs. fault-on-first-touch);
// what they share is an object heap on pages. The Pager interface captures
// the former, and Store implements the latter generically over any Pager.
package pagefile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// PageSize is the size of every page, in bytes. 8 KiB matches the page
// grain of the systems the paper measures.
const PageSize = 8192

// PageID numbers pages within a backing store. Page 0 is the superblock.
type PageID uint32

// Backing is a flat array of pages on some medium.
//
// Implementations must tolerate reads of pages that were grown but never
// written, returning zero-filled contents.
type Backing interface {
	// ReadPage fills buf (len PageSize) with page id.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (len PageSize) as page id.
	WritePage(id PageID, buf []byte) error
	// NumPages returns the current page count (high-water mark).
	NumPages() uint32
	// Grow extends the store by one zeroed page, returning its id.
	Grow() (PageID, error)
	// SizeBytes returns the current footprint in bytes.
	SizeBytes() uint64
	// Sync flushes to stable storage where that is meaningful.
	Sync() error
	// Close releases resources.
	Close() error
}

// FileBacking stores pages in an operating-system file.
type FileBacking struct {
	mu    sync.Mutex
	f     *os.File
	pages uint32
}

// OpenFile opens (creating if necessary) a file backing at path. An existing
// file must have a whole number of pages.
func OpenFile(path string) (*FileBacking, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagefile: open backing: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pagefile: stat backing: %w", err)
	}
	if info.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pagefile: %s: size %d is not a whole number of pages", path, info.Size())
	}
	return &FileBacking{f: f, pages: uint32(info.Size() / PageSize)}, nil
}

// ReadPage implements Backing.
func (b *FileBacking) ReadPage(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if uint32(id) >= b.pages {
		return fmt.Errorf("pagefile: read page %d beyond end (%d pages)", id, b.pages)
	}
	n, err := b.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	if err == io.EOF && n == 0 {
		// Grown but never written: zero-filled.
		clear(buf[:PageSize])
		return nil
	}
	if err != nil && !(err == io.EOF && n == PageSize) {
		if err == io.EOF {
			// Short page at end of file: remainder is zeros.
			clear(buf[n:PageSize])
			return nil
		}
		return fmt.Errorf("pagefile: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements Backing.
func (b *FileBacking) WritePage(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if uint32(id) >= b.pages {
		return fmt.Errorf("pagefile: write page %d beyond end (%d pages)", id, b.pages)
	}
	if _, err := b.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pagefile: write page %d: %w", id, err)
	}
	return nil
}

// NumPages implements Backing.
func (b *FileBacking) NumPages() uint32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pages
}

// Grow implements Backing. The new page is materialized lazily; reading it
// before any write yields zeros.
func (b *FileBacking) Grow() (PageID, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := PageID(b.pages)
	b.pages++
	return id, nil
}

// SizeBytes implements Backing.
func (b *FileBacking) SizeBytes() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return uint64(b.pages) * PageSize
}

// Sync implements Backing.
func (b *FileBacking) Sync() error { return b.f.Sync() }

// Close implements Backing.
func (b *FileBacking) Close() error { return b.f.Close() }

// MemBacking stores pages in memory. It is used by tests and by persistent
// managers configured for in-memory operation.
type MemBacking struct {
	mu    sync.Mutex
	pages [][]byte
}

// NewMem returns an empty in-memory backing.
func NewMem() *MemBacking { return &MemBacking{} }

// ReadPage implements Backing.
func (b *MemBacking) ReadPage(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if int(id) >= len(b.pages) {
		return fmt.Errorf("pagefile: read page %d beyond end (%d pages)", id, len(b.pages))
	}
	if b.pages[id] == nil {
		clear(buf[:PageSize])
		return nil
	}
	copy(buf[:PageSize], b.pages[id])
	return nil
}

// WritePage implements Backing.
func (b *MemBacking) WritePage(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if int(id) >= len(b.pages) {
		return fmt.Errorf("pagefile: write page %d beyond end (%d pages)", id, len(b.pages))
	}
	if b.pages[id] == nil {
		b.pages[id] = make([]byte, PageSize)
	}
	copy(b.pages[id], buf[:PageSize])
	return nil
}

// NumPages implements Backing.
func (b *MemBacking) NumPages() uint32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return uint32(len(b.pages))
}

// Grow implements Backing.
func (b *MemBacking) Grow() (PageID, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pages = append(b.pages, nil)
	return PageID(len(b.pages) - 1), nil
}

// SizeBytes implements Backing.
func (b *MemBacking) SizeBytes() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return uint64(len(b.pages)) * PageSize
}

// Sync implements Backing.
func (b *MemBacking) Sync() error { return nil }

// Close implements Backing.
func (b *MemBacking) Close() error { return nil }

// ErrPagerClosed is returned by pager operations after Close.
var ErrPagerClosed = errors.New("pagefile: pager is closed")
