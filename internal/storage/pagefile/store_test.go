package pagefile

import (
	"bytes"
	"sort"
	"testing"

	"labflow/internal/storage"
	"labflow/internal/storage/storagetest"
)

// TestConformanceOverMemPager runs the shared manager suite against Store
// with the minimal pager, covering the object layer in isolation.
func TestConformanceOverMemPager(t *testing.T) {
	storagetest.Conformance(t, func(t *testing.T) storage.Manager {
		return newTestStore(t)
	})
}

// TestConformanceWithSlack runs the same suite under heap-style size
// classes, covering the slack arithmetic on every path.
func TestConformanceWithSlack(t *testing.T) {
	slack := func(n int) int { return (n + 8 + 15) &^ 15 }
	storagetest.Conformance(t, func(t *testing.T) storage.Manager {
		s, err := New("slacked", newMemPager(), slack)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

// memPager is a minimal unbounded pager for white-box Store tests.
type memPager struct {
	backing  *MemBacking
	resident map[PageID]*Frame
	faults   uint64
	writes   uint64
}

func newMemPager() *memPager {
	return &memPager{backing: NewMem(), resident: make(map[PageID]*Frame)}
}

func (p *memPager) Pin(id PageID, mode Mode) (*Frame, error) {
	if f, ok := p.resident[id]; ok {
		return f, nil
	}
	buf := make([]byte, PageSize)
	if err := p.backing.ReadPage(id, buf); err != nil {
		return nil, err
	}
	p.faults++
	f := &Frame{ID: id, Data: buf}
	p.resident[id] = f
	return f, nil
}

func (p *memPager) Unpin(f *Frame, dirty bool) {}

func (p *memPager) AllocPage() (*Frame, error) {
	id, err := p.backing.Grow()
	if err != nil {
		return nil, err
	}
	f := &Frame{ID: id, Data: make([]byte, PageSize)}
	p.resident[id] = f
	return f, nil
}

func (p *memPager) Begin() error { return nil }

func (p *memPager) Commit() error {
	ids := make([]PageID, 0, len(p.resident))
	for id := range p.resident {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := p.backing.WritePage(id, p.resident[id].Data); err != nil {
			return err
		}
		p.writes++
	}
	return nil
}

func (p *memPager) Stats() PagerStats {
	return PagerStats{Faults: p.faults, PageWrites: p.writes}
}

func (p *memPager) SizeBytes() uint64 { return p.backing.SizeBytes() }
func (p *memPager) Close() error      { return nil }

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := New("test", newMemPager(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFreePageRecycling frees a large record and checks its overflow pages
// are reused by subsequent allocations instead of growing the file.
func TestFreePageRecycling(t *testing.T) {
	s := newTestStore(t)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("r"), 50000) // ~7 overflow pages
	oid, err := s.Allocate(storage.SegHistory, big)
	if err != nil {
		t.Fatal(err)
	}
	sizeAfterBig := s.Stats().SizeBytes
	if err := s.Free(oid); err != nil {
		t.Fatal(err)
	}
	// Allocate the same volume again: the file must not grow.
	if _, err := s.Allocate(storage.SegHistory, big); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().SizeBytes; got != sizeAfterBig {
		t.Errorf("size after recycle = %d, want %d (no growth)", got, sizeAfterBig)
	}
}

// TestShrinkReleasesOverflowPages rewrites a big record small and reuses the
// released pages.
func TestShrinkReleasesOverflowPages(t *testing.T) {
	s := newTestStore(t)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("s"), 40000)
	oid, err := s.Allocate(storage.SegHistory, big)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Stats().SizeBytes
	if err := s.Write(oid, []byte("tiny now")); err != nil {
		t.Fatal(err)
	}
	// The released extents satisfy a new big allocation without growth.
	if _, err := s.Allocate(storage.SegHistory, big); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().SizeBytes; got != before {
		t.Errorf("size = %d, want %d", got, before)
	}
	if data, err := s.Read(oid); err != nil || string(data) != "tiny now" {
		t.Fatalf("shrunk record = %q, %v", data, err)
	}
}

// TestLiveAccounting cross-checks LiveObjects/LiveBytes over a mixed
// workload with frees and rewrites.
func TestLiveAccounting(t *testing.T) {
	s := newTestStore(t)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Allocate(storage.SegIndex, make([]byte, 100))
	bOID, _ := s.Allocate(storage.SegIndex, make([]byte, 200))
	if st := s.Stats(); st.LiveObjects != 2 || st.LiveBytes != 300 {
		t.Fatalf("after allocs: %+v", st)
	}
	if err := s.Write(a, make([]byte, 150)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.LiveBytes != 350 {
		t.Fatalf("after grow: LiveBytes = %d", st.LiveBytes)
	}
	if err := s.Free(bOID); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.LiveObjects != 1 || st.LiveBytes != 150 {
		t.Fatalf("after free: %+v", st)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterSuccessorChain verifies that chained AllocateNear funnels into
// successive pages (filling before extending) rather than spraying pages.
func TestClusterSuccessorChain(t *testing.T) {
	s := newTestStore(t)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	head, err := s.AllocateCluster(storage.SegHistory, make([]byte, 800))
	if err != nil {
		t.Fatal(err)
	}
	// 50 x 800B ≈ 40 KB ≈ 5 pages if packed; interleave anchors between
	// head and latest to prove the funnel works from anywhere in the chain.
	prev := head
	for i := 0; i < 50; i++ {
		anchor := prev
		if i%3 == 0 {
			anchor = head // anchor at the cluster head, not the tail
		}
		oid, err := s.AllocateNear(anchor, make([]byte, 800))
		if err != nil {
			t.Fatal(err)
		}
		prev = oid
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// 51 records * 806B = ~41 KB; superblock + tables + <= 7 data pages.
	if got := s.Stats().SizeBytes; got > 12*PageSize {
		t.Errorf("cluster used %d bytes (> 12 pages); successor chain should pack", got)
	}
}

// TestSegmentIsolation confirms fill pages are per segment: records from
// different segments never share a page.
func TestSegmentIsolation(t *testing.T) {
	s := newTestStore(t)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Allocate(storage.SegMaterial, []byte("mat")); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Allocate(storage.SegHistory, []byte("his")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// White-box: resolve each object's page and check segment tags.
	for seg, want := range map[storage.SegmentID]uint8{storage.SegMaterial: uint8(storage.SegMaterial), storage.SegHistory: uint8(storage.SegHistory)} {
		for idx := uint64(1); idx <= 50; idx++ {
			e, err := s.loadEntry(storage.MakeOID(seg, idx))
			if err != nil {
				t.Fatal(err)
			}
			f, err := s.pager.Pin(entryPage(e), ModeRead)
			if err != nil {
				t.Fatal(err)
			}
			if pageSeg(f.Data) != want {
				t.Fatalf("object %v on page tagged segment %d", storage.MakeOID(seg, idx), pageSeg(f.Data))
			}
			s.pager.Unpin(f, false)
		}
	}
}
