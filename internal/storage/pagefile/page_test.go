package pagefile

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestPage() []byte {
	p := make([]byte, PageSize)
	initPage(p, 3, 0)
	return p
}

func TestPageInsertRead(t *testing.T) {
	p := newTestPage()
	var slots []int
	var wants [][]byte
	for i := 0; ; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 100+i)
		slot, ok := pageInsert(p, data, 0)
		if !ok {
			break
		}
		slots = append(slots, slot)
		wants = append(wants, data)
	}
	if len(slots) < 10 {
		t.Fatalf("only %d records fit in a page", len(slots))
	}
	for i, slot := range slots {
		got, err := pageRead(p, slot)
		if err != nil {
			t.Fatalf("read slot %d: %v", slot, err)
		}
		if !bytes.Equal(got, wants[i]) {
			t.Fatalf("slot %d corrupted", slot)
		}
	}
	if pageSeg(p) != 3 {
		t.Errorf("segment = %d, want 3", pageSeg(p))
	}
}

func TestPageSlotReuse(t *testing.T) {
	p := newTestPage()
	slot, ok := pageInsert(p, make([]byte, 500), 0)
	if !ok {
		t.Fatal("insert failed")
	}
	// Fill the rest.
	for {
		if _, ok := pageInsert(p, make([]byte, 500), 0); !ok {
			break
		}
	}
	if err := pageFreeSlot(p, slot); err != nil {
		t.Fatal(err)
	}
	// A smaller record must reuse the freed slot's reserved space.
	got, ok := pageInsert(p, []byte("reuse me"), 0)
	if !ok {
		t.Fatal("insert after free failed")
	}
	if got != slot {
		t.Errorf("reused slot = %d, want %d", got, slot)
	}
	data, err := pageRead(p, slot)
	if err != nil || string(data) != "reuse me" {
		t.Fatalf("read reused slot = %q, %v", data, err)
	}
	if err := pageFreeSlot(p, 9999); err == nil {
		t.Error("freeing out-of-range slot should fail")
	}
}

func TestPageUpdate(t *testing.T) {
	p := newTestPage()
	slot, _ := pageInsert(p, []byte("hello world"), 0)
	ok, err := pageUpdate(p, slot, []byte("short"))
	if err != nil || !ok {
		t.Fatalf("in-place shrink: ok=%v err=%v", ok, err)
	}
	data, _ := pageRead(p, slot)
	if string(data) != "short" {
		t.Fatalf("after shrink = %q", data)
	}
	// Growing past the reserved capacity must be refused (not an error).
	ok, err = pageUpdate(p, slot, bytes.Repeat([]byte("x"), 100))
	if err != nil || ok {
		t.Fatalf("over-capacity update: ok=%v err=%v; want refused", ok, err)
	}
	// But growing back to the original capacity is fine.
	ok, err = pageUpdate(p, slot, []byte("hello again"))
	if err != nil || !ok {
		t.Fatalf("capacity-fit update: ok=%v err=%v", ok, err)
	}
}

func TestPageDoubleFree(t *testing.T) {
	p := newTestPage()
	slot, _ := pageInsert(p, []byte("x"), 0)
	if err := pageFreeSlot(p, slot); err != nil {
		t.Fatal(err)
	}
	if err := pageFreeSlot(p, slot); err == nil {
		t.Error("double free should fail")
	}
	if _, err := pageRead(p, slot); err == nil {
		t.Error("reading freed slot should fail")
	}
}

func TestMaxInlineFits(t *testing.T) {
	p := newTestPage()
	if _, ok := pageInsert(p, make([]byte, MaxInline), 0); !ok {
		t.Fatal("MaxInline record must fit an empty page")
	}
	p2 := newTestPage()
	if _, ok := pageInsert(p2, make([]byte, MaxInline+1), 0); ok {
		t.Fatal("MaxInline+1 record must not fit")
	}
}

// TestQuickPageModel inserts/frees randomly and checks against a model.
func TestQuickPageModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := newTestPage()
		model := map[int][]byte{}
		for i := 0; i < 200; i++ {
			if rng.Intn(3) == 0 && len(model) > 0 {
				for slot := range model {
					if err := pageFreeSlot(p, slot); err != nil {
						return false
					}
					delete(model, slot)
					break
				}
				continue
			}
			data := make([]byte, rng.Intn(300))
			rng.Read(data)
			slot, ok := pageInsert(p, data, 0)
			if !ok {
				continue
			}
			if _, exists := model[slot]; exists {
				return false // slot double-issued
			}
			model[slot] = data
		}
		for slot, want := range model {
			got, err := pageRead(p, slot)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStubRoundTrip(t *testing.T) {
	pages := []PageID{5, 9, 1000000}
	stub := encodeStub(12345, pages)
	total, got, err := decodeStub(stub)
	if err != nil {
		t.Fatal(err)
	}
	if total != 12345 || len(got) != 3 || got[2] != 1000000 {
		t.Fatalf("decodeStub = %d, %v", total, got)
	}
	if _, _, err := decodeStub([]byte{0xFF}); err == nil {
		t.Error("corrupt stub should fail to decode")
	}
}
