package pagefile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestFileBackingRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	b, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.NumPages() != 0 {
		t.Fatalf("fresh backing pages = %d", b.NumPages())
	}
	id0, err := b.Grow()
	if err != nil || id0 != 0 {
		t.Fatalf("Grow = %d, %v", id0, err)
	}
	id1, _ := b.Grow()
	if id1 != 1 || b.NumPages() != 2 || b.SizeBytes() != 2*PageSize {
		t.Fatalf("after grows: %d pages, %d bytes", b.NumPages(), b.SizeBytes())
	}

	// Grown-but-unwritten pages read as zeros.
	buf := make([]byte, PageSize)
	buf[0] = 0xEE
	if err := b.ReadPage(id1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Error("unwritten page should read zero-filled")
	}

	want := bytes.Repeat([]byte{0xAB}, PageSize)
	if err := b.WritePage(id1, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := b.ReadPage(id1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("page contents corrupted")
	}
	// Page 0 written after page 1: sparse region still reads as zeros.
	if err := b.ReadPage(id0, got); err != nil {
		t.Fatal(err)
	}
	for _, c := range got {
		if c != 0 {
			t.Fatal("page 0 should still be zeros")
		}
	}

	// Out-of-range access is an error.
	if err := b.ReadPage(99, got); err == nil {
		t.Error("read beyond end should fail")
	}
	if err := b.WritePage(99, got); err == nil {
		t.Error("write beyond end should fail")
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenFileRejectsTornFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.db")
	if err := os.WriteFile(path, make([]byte, PageSize+100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Error("a file that is not a whole number of pages should be rejected")
	}
}

func TestMemBackingBounds(t *testing.T) {
	b := NewMem()
	buf := make([]byte, PageSize)
	if err := b.ReadPage(0, buf); err == nil {
		t.Error("read of empty backing should fail")
	}
	if err := b.WritePage(0, buf); err == nil {
		t.Error("write of empty backing should fail")
	}
	id, err := b.Grow()
	if err != nil || id != 0 {
		t.Fatal(err)
	}
	// Unwritten grown page reads zeros.
	buf[7] = 9
	if err := b.ReadPage(0, buf); err != nil || buf[7] != 0 {
		t.Fatalf("unwritten mem page: %v, byte=%d", err, buf[7])
	}
	if b.Sync() != nil || b.Close() != nil {
		t.Error("mem backing sync/close should be no-ops")
	}
}
