package pagefile

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"labflow/internal/rec"
	"labflow/internal/storage"
)

// Superblock layout (page 0).
//
//	0:8     magic "LFSB0001"
//	8:12    page size
//	12:20   root OID
//	20:24   free-page chain head (0 = none)
//	24:88   per segment (4 x 16): dirPage u32, fillPage u32, nextIndex u64
//	88:96   live objects
//	96:104  live bytes
const (
	superMagic   = "LFSB0001"
	dirEntries   = PageSize / 4 // table pages per segment directory
	tableEntries = PageSize / 8 // object-table entries per table page

	entryOverflow  = uint64(1) << 63
	entryTombstone = math.MaxUint64
)

type segMeta struct {
	dirPage   PageID // directory of object-table pages (0 = not yet allocated)
	fillPage  PageID // current allocation target (0 = none)
	nextIndex uint64 // last issued object index
}

type superblock struct {
	root     storage.OID
	freePage PageID
	segs     [storage.NumSegments]segMeta
	liveObj  uint64
	liveByte uint64
}

// Store implements storage.Manager over a Pager: stable logical OIDs through
// per-segment object tables, slotted-page records, overflow chains for large
// records, and a free-page list.
//
// Store serializes object-level operations with a single mutex; concurrency
// control below the object layer (page locks) is the pager's business. This
// matches the benchmark's single-writer workload while keeping multi-client
// page traffic well-formed.
type Store struct {
	mu     sync.Mutex
	name   string
	pager  Pager
	super  superblock
	inTxn  bool
	closed bool

	// slack maps a record size to the heap capacity reserved for it; nil
	// reserves exactly the record size. The texas manager installs its
	// heap allocator's size classes here, which is why its database files
	// are larger than ostore's for identical data — as in the paper.
	slack func(int) int

	// succ chains cluster pages: when a cluster's page fills, the overflow
	// page is recorded as its successor, and every AllocateNear anchored
	// anywhere in the cluster funnels down the chain. Pages therefore fill
	// completely before a cluster grows. Placement hints only (in-memory);
	// after a reopen, extensions simply start new chains.
	succ map[PageID]PageID

	reads  uint64
	writes uint64
	allocs uint64
}

// maxClusterHops bounds the successor-chain walk.
const maxClusterHops = 64

// New opens (or formats) a store named name over the pager. A fresh backing
// store is formatted with an empty superblock. slack, if non-nil, maps a
// record size to the reserved heap capacity (allocator size classes).
func New(name string, pager Pager, slack func(int) int) (*Store, error) {
	s := &Store{name: name, pager: pager, slack: slack, succ: make(map[PageID]PageID)}
	if err := pager.Begin(); err != nil {
		return nil, fmt.Errorf("pagefile: format begin: %w", err)
	}
	if pager.SizeBytes() == 0 {
		f, err := pager.AllocPage()
		if err != nil {
			return nil, fmt.Errorf("pagefile: allocate superblock: %w", err)
		}
		if f.ID != 0 {
			return nil, fmt.Errorf("pagefile: superblock landed on page %d, want 0", f.ID)
		}
		s.writeSuper(f.Data)
		pager.Unpin(f, true)
	} else {
		f, err := pager.Pin(0, ModeRead)
		if err != nil {
			return nil, fmt.Errorf("pagefile: read superblock: %w", err)
		}
		err = s.readSuper(f.Data)
		pager.Unpin(f, false)
		if err != nil {
			return nil, err
		}
	}
	if err := pager.Commit(); err != nil {
		return nil, fmt.Errorf("pagefile: format commit: %w", err)
	}
	return s, nil
}

func (s *Store) writeSuper(p []byte) {
	clear(p[:PageSize])
	copy(p[0:8], superMagic)
	binary.LittleEndian.PutUint32(p[8:12], PageSize)
	binary.LittleEndian.PutUint64(p[12:20], uint64(s.super.root))
	binary.LittleEndian.PutUint32(p[20:24], uint32(s.super.freePage))
	for i := range s.super.segs {
		base := 24 + i*16
		binary.LittleEndian.PutUint32(p[base:], uint32(s.super.segs[i].dirPage))
		binary.LittleEndian.PutUint32(p[base+4:], uint32(s.super.segs[i].fillPage))
		binary.LittleEndian.PutUint64(p[base+8:], s.super.segs[i].nextIndex)
	}
	binary.LittleEndian.PutUint64(p[88:96], s.super.liveObj)
	binary.LittleEndian.PutUint64(p[96:104], s.super.liveByte)
}

func (s *Store) readSuper(p []byte) error {
	if string(p[0:8]) != superMagic {
		return fmt.Errorf("pagefile: bad superblock magic %q", p[0:8])
	}
	if ps := binary.LittleEndian.Uint32(p[8:12]); ps != PageSize {
		return fmt.Errorf("pagefile: page size mismatch: file %d, build %d", ps, PageSize)
	}
	s.super.root = storage.OID(binary.LittleEndian.Uint64(p[12:20]))
	s.super.freePage = PageID(binary.LittleEndian.Uint32(p[20:24]))
	for i := range s.super.segs {
		base := 24 + i*16
		s.super.segs[i].dirPage = PageID(binary.LittleEndian.Uint32(p[base:]))
		s.super.segs[i].fillPage = PageID(binary.LittleEndian.Uint32(p[base+4:]))
		s.super.segs[i].nextIndex = binary.LittleEndian.Uint64(p[base+8:])
	}
	s.super.liveObj = binary.LittleEndian.Uint64(p[88:96])
	s.super.liveByte = binary.LittleEndian.Uint64(p[96:104])
	return nil
}

func (s *Store) flushSuper() error {
	f, err := s.pager.Pin(0, ModeWrite)
	if err != nil {
		return fmt.Errorf("pagefile: pin superblock: %w", err)
	}
	s.writeSuper(f.Data)
	s.pager.Unpin(f, true)
	return nil
}

// Name implements storage.Manager.
func (s *Store) Name() string { return s.name }

// allocPageRaw takes a page from the free chain or grows the backing store.
// The page is returned pinned for write with undefined contents.
func (s *Store) allocPageRaw() (*Frame, error) {
	if s.super.freePage != 0 {
		id := s.super.freePage
		f, err := s.pager.Pin(id, ModeWrite)
		if err != nil {
			return nil, fmt.Errorf("pagefile: pin free page %d: %w", id, err)
		}
		s.super.freePage = PageID(binary.LittleEndian.Uint32(f.Data[0:4]))
		return f, nil
	}
	return s.pager.AllocPage()
}

// releasePage puts a page on the free chain.
func (s *Store) releasePage(id PageID) error {
	f, err := s.pager.Pin(id, ModeWrite)
	if err != nil {
		return fmt.Errorf("pagefile: pin page %d for release: %w", id, err)
	}
	clear(f.Data[:PageSize])
	binary.LittleEndian.PutUint32(f.Data[0:4], uint32(s.super.freePage))
	s.pager.Unpin(f, true)
	s.super.freePage = id
	return nil
}

// entryLoc resolves an object index to its table-page location, allocating
// directory and table pages on demand when alloc is true.
func (s *Store) entryLoc(seg storage.SegmentID, index uint64, alloc bool) (PageID, int, error) {
	if index == 0 {
		return 0, 0, storage.ErrNoSuchObject
	}
	idx := index - 1
	dirSlot := int(idx / tableEntries)
	tblSlot := int(idx % tableEntries)
	if dirSlot >= dirEntries {
		return 0, 0, storage.ErrSegmentFull
	}
	sm := &s.super.segs[seg]
	if sm.dirPage == 0 {
		if !alloc {
			return 0, 0, storage.ErrNoSuchObject
		}
		f, err := s.allocPageRaw()
		if err != nil {
			return 0, 0, err
		}
		clear(f.Data[:PageSize])
		sm.dirPage = f.ID
		s.pager.Unpin(f, true)
	}
	df, err := s.pager.Pin(sm.dirPage, ModeRead)
	if err != nil {
		return 0, 0, fmt.Errorf("pagefile: pin directory page: %w", err)
	}
	tbl := PageID(binary.LittleEndian.Uint32(df.Data[dirSlot*4:]))
	s.pager.Unpin(df, false)
	if tbl == 0 {
		if !alloc {
			return 0, 0, storage.ErrNoSuchObject
		}
		tf, err := s.allocPageRaw()
		if err != nil {
			return 0, 0, err
		}
		clear(tf.Data[:PageSize])
		tbl = tf.ID
		s.pager.Unpin(tf, true)
		df, err = s.pager.Pin(sm.dirPage, ModeWrite)
		if err != nil {
			return 0, 0, fmt.Errorf("pagefile: pin directory page: %w", err)
		}
		binary.LittleEndian.PutUint32(df.Data[dirSlot*4:], uint32(tbl))
		s.pager.Unpin(df, true)
	}
	return tbl, tblSlot, nil
}

func (s *Store) loadEntry(oid storage.OID) (uint64, error) {
	if oid.IsNil() || oid.Segment() >= storage.NumSegments {
		return 0, storage.ErrNoSuchObject
	}
	tbl, slot, err := s.entryLoc(oid.Segment(), oid.Index(), false)
	if err != nil {
		return 0, err
	}
	f, err := s.pager.Pin(tbl, ModeRead)
	if err != nil {
		return 0, fmt.Errorf("pagefile: pin table page: %w", err)
	}
	e := binary.LittleEndian.Uint64(f.Data[slot*8:])
	s.pager.Unpin(f, false)
	if e == 0 || e == entryTombstone {
		return 0, storage.ErrNoSuchObject
	}
	return e, nil
}

func (s *Store) storeEntry(oid storage.OID, e uint64) error {
	tbl, slot, err := s.entryLoc(oid.Segment(), oid.Index(), true)
	if err != nil {
		return err
	}
	f, err := s.pager.Pin(tbl, ModeWrite)
	if err != nil {
		return fmt.Errorf("pagefile: pin table page: %w", err)
	}
	binary.LittleEndian.PutUint64(f.Data[slot*8:], e)
	s.pager.Unpin(f, true)
	return nil
}

func makeEntry(page PageID, slot int, overflow bool) uint64 {
	e := uint64(page)<<16 | uint64(slot)
	if overflow {
		e |= entryOverflow
	}
	return e
}

func entryPage(e uint64) PageID { return PageID((e &^ entryOverflow) >> 16) }
func entrySlot(e uint64) int    { return int(e & 0xFFFF) }
func entryIsOverflow(e uint64) bool {
	return e&entryOverflow != 0
}

// capacityFor applies the allocator's size classes to a record size.
func (s *Store) capacityFor(n int) int {
	if s.slack == nil {
		return n
	}
	if c := s.slack(n); c > n {
		return c
	}
	return n
}

// placeInline stores an inline-sized record in seg, preferring the segment's
// fill page, and returns its location.
func (s *Store) placeInline(seg storage.SegmentID, data []byte) (PageID, int, error) {
	capacity := s.capacityFor(len(data))
	sm := &s.super.segs[seg]
	if sm.fillPage != 0 {
		f, err := s.pager.Pin(sm.fillPage, ModeWrite)
		if err != nil {
			return 0, 0, fmt.Errorf("pagefile: pin fill page: %w", err)
		}
		if slot, ok := pageInsert(f.Data, data, capacity); ok {
			id := f.ID
			s.pager.Unpin(f, true)
			return id, slot, nil
		}
		s.pager.Unpin(f, false)
	}
	f, err := s.allocPageRaw()
	if err != nil {
		return 0, 0, err
	}
	initPage(f.Data, uint8(seg), 0)
	slot, ok := pageInsert(f.Data, data, capacity)
	if !ok {
		s.pager.Unpin(f, false)
		return 0, 0, fmt.Errorf("pagefile: record of %d bytes does not fit a fresh page", len(data))
	}
	sm.fillPage = f.ID
	id := f.ID
	s.pager.Unpin(f, true)
	return id, slot, nil
}

// placeOverflow stores a large record across extent pages plus a stub.
func (s *Store) placeOverflow(seg storage.SegmentID, data []byte) (PageID, int, error) {
	pages, err := s.writeExtents(seg, data, nil)
	if err != nil {
		return 0, 0, err
	}
	stub := encodeStub(len(data), pages)
	return s.placeInline(seg, stub)
}

// writeExtents writes data across overflow pages, reusing the given pages
// first and allocating or releasing pages to match the required count.
func (s *Store) writeExtents(seg storage.SegmentID, data []byte, reuse []PageID) ([]PageID, error) {
	need := (len(data) + overflowCap - 1) / overflowCap
	if need == 0 {
		need = 1
	}
	pages := make([]PageID, 0, need)
	for i := 0; i < need; i++ {
		var f *Frame
		var err error
		if i < len(reuse) {
			f, err = s.pager.Pin(reuse[i], ModeWrite)
		} else {
			f, err = s.allocPageRaw()
		}
		if err != nil {
			return nil, fmt.Errorf("pagefile: overflow extent: %w", err)
		}
		initPage(f.Data, uint8(seg), flagOverflow)
		lo := i * overflowCap
		hi := min(lo+overflowCap, len(data))
		copy(f.Data[pageHdrSize:], data[lo:hi])
		pages = append(pages, f.ID)
		s.pager.Unpin(f, true)
	}
	for _, id := range reuse[min(need, len(reuse)):] {
		if err := s.releasePage(id); err != nil {
			return nil, err
		}
	}
	return pages, nil
}

func encodeStub(total int, pages []PageID) []byte {
	e := rec.NewEncoder(8 + 5*len(pages))
	e.Uint(uint64(total))
	e.Uint(uint64(len(pages)))
	for _, p := range pages {
		e.Uint(uint64(p))
	}
	return e.Bytes()
}

func decodeStub(b []byte) (total int, pages []PageID, err error) {
	d := rec.NewDecoder(b)
	total = int(d.Uint())
	n := int(d.Uint())
	if d.Err() != nil || n < 0 || n > dirEntries*tableEntries {
		return 0, nil, fmt.Errorf("pagefile: corrupt overflow stub")
	}
	pages = make([]PageID, n)
	for i := range pages {
		pages[i] = PageID(d.Uint())
	}
	if err := d.Finish(); err != nil {
		return 0, nil, fmt.Errorf("pagefile: corrupt overflow stub: %w", err)
	}
	return total, pages, nil
}

func (s *Store) readOverflow(stub []byte) ([]byte, error) {
	total, pages, err := decodeStub(stub)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, total)
	for _, id := range pages {
		f, err := s.pager.Pin(id, ModeRead)
		if err != nil {
			return nil, fmt.Errorf("pagefile: read overflow extent %d: %w", id, err)
		}
		remain := total - len(out)
		out = append(out, f.Data[pageHdrSize:pageHdrSize+min(remain, overflowCap)]...)
		s.pager.Unpin(f, false)
	}
	if len(out) != total {
		return nil, fmt.Errorf("pagefile: overflow record truncated: have %d of %d bytes", len(out), total)
	}
	return out, nil
}

func (s *Store) requireTxn() error {
	if s.closed {
		return storage.ErrClosed
	}
	if !s.inTxn {
		return storage.ErrNoTransaction
	}
	return nil
}

// Allocate implements storage.Manager.
func (s *Store) Allocate(seg storage.SegmentID, data []byte) (storage.OID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocateLocked(seg, data)
}

func (s *Store) allocateLocked(seg storage.SegmentID, data []byte) (storage.OID, error) {
	if err := s.requireTxn(); err != nil {
		return storage.NilOID, err
	}
	if seg >= storage.NumSegments {
		return storage.NilOID, fmt.Errorf("pagefile: bad segment %d", seg)
	}
	var page PageID
	var slot int
	var err error
	overflow := len(data) > MaxInline
	if overflow {
		page, slot, err = s.placeOverflow(seg, data)
	} else {
		page, slot, err = s.placeInline(seg, data)
	}
	if err != nil {
		return storage.NilOID, err
	}
	sm := &s.super.segs[seg]
	sm.nextIndex++
	oid := storage.MakeOID(seg, sm.nextIndex)
	if err := s.storeEntry(oid, makeEntry(page, slot, overflow)); err != nil {
		return storage.NilOID, err
	}
	s.super.liveObj++
	s.super.liveByte += uint64(len(data))
	s.allocs++
	return oid, nil
}

// AllocateNear implements storage.Manager: it tries to co-locate the new
// record on the same page as near before falling back to the segment fill
// page. This is the clustering hook used by the Texas+TC configuration.
func (s *Store) AllocateNear(near storage.OID, data []byte) (storage.OID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.requireTxn(); err != nil {
		return storage.NilOID, err
	}
	e, err := s.loadEntry(near)
	if err != nil {
		return storage.NilOID, fmt.Errorf("pagefile: AllocateNear %v: %w", near, err)
	}
	seg := near.Segment()
	if len(data) > MaxInline {
		return s.allocateLocked(seg, data)
	}
	// Client-directed placement packs records exactly (no allocator slack):
	// the clustering client manages this space itself.
	capacity := len(data)

	// Walk the cluster: the anchor's page, then its successor chain. All
	// records anchored anywhere in a cluster funnel into the same chain, so
	// cluster pages fill completely before the cluster claims a new page.
	tryPage := func(id PageID) (int, bool, error) {
		f, err := s.pager.Pin(id, ModeWrite)
		if err != nil {
			return 0, false, err
		}
		slot, ok := pageInsert(f.Data, data, capacity)
		s.pager.Unpin(f, ok)
		return slot, ok, nil
	}

	page := entryPage(e)
	slot, ok, err := tryPage(page)
	if err != nil {
		return storage.NilOID, err
	}
	for hops := 0; !ok && hops < maxClusterHops; hops++ {
		next, exists := s.succ[page]
		if !exists {
			break
		}
		page = next
		slot, ok, err = tryPage(page)
		if err != nil {
			return storage.NilOID, err
		}
	}
	if !ok {
		f, err := s.allocPageRaw()
		if err != nil {
			return storage.NilOID, err
		}
		initPage(f.Data, uint8(seg), 0)
		slot, ok = pageInsert(f.Data, data, capacity)
		if !ok {
			s.pager.Unpin(f, false)
			return storage.NilOID, fmt.Errorf("pagefile: record of %d bytes does not fit a fresh page", len(data))
		}
		s.succ[page] = f.ID
		page = f.ID
		s.pager.Unpin(f, true)
	}

	return s.finishAlloc(seg, page, slot, len(data))
}

// AllocateCluster implements storage.Manager: the record starts a fresh
// cluster page that chained AllocateNear calls then extend.
func (s *Store) AllocateCluster(seg storage.SegmentID, data []byte) (storage.OID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.requireTxn(); err != nil {
		return storage.NilOID, err
	}
	if seg >= storage.NumSegments {
		return storage.NilOID, fmt.Errorf("pagefile: bad segment %d", seg)
	}
	if len(data) > MaxInline {
		return s.allocateLocked(seg, data)
	}
	f, err := s.allocPageRaw()
	if err != nil {
		return storage.NilOID, err
	}
	initPage(f.Data, uint8(seg), 0)
	slot, ok := pageInsert(f.Data, data, len(data))
	if !ok {
		s.pager.Unpin(f, false)
		return storage.NilOID, fmt.Errorf("pagefile: record of %d bytes does not fit a fresh page", len(data))
	}
	page := f.ID
	s.pager.Unpin(f, true)
	return s.finishAlloc(seg, page, slot, len(data))
}

// finishAlloc issues the OID and object-table entry for a placed record.
func (s *Store) finishAlloc(seg storage.SegmentID, page PageID, slot int, size int) (storage.OID, error) {
	sm := &s.super.segs[seg]
	sm.nextIndex++
	oid := storage.MakeOID(seg, sm.nextIndex)
	if err := s.storeEntry(oid, makeEntry(page, slot, false)); err != nil {
		return storage.NilOID, err
	}
	s.super.liveObj++
	s.super.liveByte += uint64(size)
	s.allocs++
	return oid, nil
}

// Read implements storage.Manager.
func (s *Store) Read(oid storage.OID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, storage.ErrClosed
	}
	e, err := s.loadEntry(oid)
	if err != nil {
		return nil, fmt.Errorf("pagefile: read %v: %w", oid, err)
	}
	f, err := s.pager.Pin(entryPage(e), ModeRead)
	if err != nil {
		return nil, fmt.Errorf("pagefile: read %v: %w", oid, err)
	}
	raw, err := pageRead(f.Data, entrySlot(e))
	if err != nil {
		s.pager.Unpin(f, false)
		return nil, fmt.Errorf("pagefile: read %v: %w", oid, err)
	}
	data := append([]byte(nil), raw...)
	s.pager.Unpin(f, false)
	s.reads++
	if entryIsOverflow(e) {
		return s.readOverflow(data)
	}
	return data, nil
}

// Write implements storage.Manager. Records may grow or shrink; the store
// relocates them (including across the inline/overflow boundary) while the
// OID stays stable.
func (s *Store) Write(oid storage.OID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.requireTxn(); err != nil {
		return err
	}
	e, err := s.loadEntry(oid)
	if err != nil {
		return fmt.Errorf("pagefile: write %v: %w", oid, err)
	}
	oldLen, err := s.liveLenLocked(e)
	if err != nil {
		return fmt.Errorf("pagefile: write %v: %w", oid, err)
	}
	seg := oid.Segment()
	newOverflow := len(data) > MaxInline

	switch {
	case !entryIsOverflow(e) && !newOverflow:
		f, err := s.pager.Pin(entryPage(e), ModeWrite)
		if err != nil {
			return fmt.Errorf("pagefile: write %v: %w", oid, err)
		}
		ok, err := pageUpdate(f.Data, entrySlot(e), data)
		if err != nil {
			s.pager.Unpin(f, false)
			return fmt.Errorf("pagefile: write %v: %w", oid, err)
		}
		if ok {
			s.pager.Unpin(f, true)
		} else {
			// Record grew past its reserved capacity: relocate.
			if err := pageFreeSlot(f.Data, entrySlot(e)); err != nil {
				s.pager.Unpin(f, false)
				return fmt.Errorf("pagefile: write %v: %w", oid, err)
			}
			s.pager.Unpin(f, true)
			page, slot, err := s.placeInline(seg, data)
			if err != nil {
				return fmt.Errorf("pagefile: write %v: %w", oid, err)
			}
			if err := s.storeEntry(oid, makeEntry(page, slot, false)); err != nil {
				return err
			}
		}

	case entryIsOverflow(e) && newOverflow:
		stub, err := s.readSlotLocked(e)
		if err != nil {
			return fmt.Errorf("pagefile: write %v: %w", oid, err)
		}
		_, oldPages, err := decodeStub(stub)
		if err != nil {
			return fmt.Errorf("pagefile: write %v: %w", oid, err)
		}
		pages, err := s.writeExtents(seg, data, oldPages)
		if err != nil {
			return fmt.Errorf("pagefile: write %v: %w", oid, err)
		}
		if err := s.rewriteStub(oid, e, seg, encodeStub(len(data), pages)); err != nil {
			return err
		}

	case !entryIsOverflow(e) && newOverflow:
		if err := s.freeSlotAt(e); err != nil {
			return fmt.Errorf("pagefile: write %v: %w", oid, err)
		}
		page, slot, err := s.placeOverflow(seg, data)
		if err != nil {
			return fmt.Errorf("pagefile: write %v: %w", oid, err)
		}
		if err := s.storeEntry(oid, makeEntry(page, slot, true)); err != nil {
			return err
		}

	default: // overflow -> inline
		stub, err := s.readSlotLocked(e)
		if err != nil {
			return fmt.Errorf("pagefile: write %v: %w", oid, err)
		}
		_, oldPages, err := decodeStub(stub)
		if err != nil {
			return fmt.Errorf("pagefile: write %v: %w", oid, err)
		}
		for _, id := range oldPages {
			if err := s.releasePage(id); err != nil {
				return err
			}
		}
		if err := s.freeSlotAt(e); err != nil {
			return fmt.Errorf("pagefile: write %v: %w", oid, err)
		}
		page, slot, err := s.placeInline(seg, data)
		if err != nil {
			return fmt.Errorf("pagefile: write %v: %w", oid, err)
		}
		if err := s.storeEntry(oid, makeEntry(page, slot, false)); err != nil {
			return err
		}
	}

	s.super.liveByte += uint64(len(data)) - uint64(oldLen)
	s.writes++
	return nil
}

// rewriteStub replaces an overflow stub record in place or by relocation.
func (s *Store) rewriteStub(oid storage.OID, e uint64, seg storage.SegmentID, stub []byte) error {
	f, err := s.pager.Pin(entryPage(e), ModeWrite)
	if err != nil {
		return err
	}
	ok, err := pageUpdate(f.Data, entrySlot(e), stub)
	if err != nil {
		s.pager.Unpin(f, false)
		return err
	}
	if ok {
		s.pager.Unpin(f, true)
		return nil
	}
	if err := pageFreeSlot(f.Data, entrySlot(e)); err != nil {
		s.pager.Unpin(f, false)
		return err
	}
	s.pager.Unpin(f, true)
	page, slot, err := s.placeInline(seg, stub)
	if err != nil {
		return err
	}
	return s.storeEntry(oid, makeEntry(page, slot, true))
}

// readSlotLocked returns a copy of the raw slot contents for entry e.
func (s *Store) readSlotLocked(e uint64) ([]byte, error) {
	f, err := s.pager.Pin(entryPage(e), ModeRead)
	if err != nil {
		return nil, err
	}
	raw, err := pageRead(f.Data, entrySlot(e))
	if err != nil {
		s.pager.Unpin(f, false)
		return nil, err
	}
	out := append([]byte(nil), raw...)
	s.pager.Unpin(f, false)
	return out, nil
}

// liveLenLocked returns the logical length of the record behind entry e.
func (s *Store) liveLenLocked(e uint64) (int, error) {
	raw, err := s.readSlotLocked(e)
	if err != nil {
		return 0, err
	}
	if !entryIsOverflow(e) {
		return len(raw), nil
	}
	total, _, err := decodeStub(raw)
	return total, err
}

func (s *Store) freeSlotAt(e uint64) error {
	f, err := s.pager.Pin(entryPage(e), ModeWrite)
	if err != nil {
		return err
	}
	err = pageFreeSlot(f.Data, entrySlot(e))
	s.pager.Unpin(f, err == nil)
	return err
}

// Free implements storage.Manager.
func (s *Store) Free(oid storage.OID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.requireTxn(); err != nil {
		return err
	}
	e, err := s.loadEntry(oid)
	if err != nil {
		return fmt.Errorf("pagefile: free %v: %w", oid, err)
	}
	length, err := s.liveLenLocked(e)
	if err != nil {
		return fmt.Errorf("pagefile: free %v: %w", oid, err)
	}
	if entryIsOverflow(e) {
		stub, err := s.readSlotLocked(e)
		if err != nil {
			return fmt.Errorf("pagefile: free %v: %w", oid, err)
		}
		_, pages, err := decodeStub(stub)
		if err != nil {
			return fmt.Errorf("pagefile: free %v: %w", oid, err)
		}
		for _, id := range pages {
			if err := s.releasePage(id); err != nil {
				return err
			}
		}
	}
	if err := s.freeSlotAt(e); err != nil {
		return fmt.Errorf("pagefile: free %v: %w", oid, err)
	}
	if err := s.storeEntry(oid, entryTombstone); err != nil {
		return err
	}
	s.super.liveObj--
	s.super.liveByte -= uint64(length)
	return nil
}

// Root implements storage.Manager.
func (s *Store) Root() (storage.OID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return storage.NilOID, storage.ErrClosed
	}
	return s.super.root, nil
}

// SetRoot implements storage.Manager.
func (s *Store) SetRoot(oid storage.OID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.requireTxn(); err != nil {
		return err
	}
	s.super.root = oid
	return nil
}

// Begin implements storage.Manager.
func (s *Store) Begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return storage.ErrClosed
	}
	if s.inTxn {
		return fmt.Errorf("pagefile: nested transaction")
	}
	if err := s.pager.Begin(); err != nil {
		return err
	}
	s.inTxn = true
	return nil
}

// Commit implements storage.Manager.
func (s *Store) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return storage.ErrClosed
	}
	if !s.inTxn {
		return storage.ErrNoTransaction
	}
	if err := s.flushSuper(); err != nil {
		return err
	}
	s.inTxn = false
	return s.pager.Commit()
}

// Stats implements storage.Manager.
func (s *Store) Stats() storage.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := s.pager.Stats()
	return storage.Stats{
		Faults:      ps.Faults,
		PageWrites:  ps.PageWrites,
		LockWaits:   ps.LockWaits,
		Reads:       s.reads,
		Writes:      s.writes,
		Allocs:      s.allocs,
		SizeBytes:   s.pager.SizeBytes(),
		LiveObjects: s.super.liveObj,
		LiveBytes:   s.super.liveByte,
	}
}

// Close implements storage.Manager.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if s.inTxn {
		return fmt.Errorf("pagefile: close with open transaction")
	}
	s.closed = true
	return s.pager.Close()
}

var _ storage.Manager = (*Store)(nil)
