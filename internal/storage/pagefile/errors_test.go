package pagefile

import (
	"errors"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"labflow/internal/storage"
)

// TestSentinelUnwrapping pins the error-chain contract at the object layer:
// Store wraps lookup failures as "pagefile: <op> <oid>: %w", and errors.Is
// must still reach the shared sentinels through that prefix.
func TestSentinelUnwrapping(t *testing.T) {
	s, err := New("errs", newMemPager(), nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	bogus := storage.MakeOID(storage.SegIndex, 4242)

	_, err = s.Read(bogus)
	if !errors.Is(err, storage.ErrNoSuchObject) {
		t.Errorf("Read(bogus) = %v; want chain containing storage.ErrNoSuchObject", err)
	}
	if !strings.Contains(err.Error(), bogus.String()) {
		t.Errorf("Read(bogus) error %q does not name the OID %s", err, bogus)
	}

	if err := s.Write(bogus, []byte("x")); !errors.Is(err, storage.ErrNoTransaction) {
		t.Errorf("Write outside txn = %v; want chain containing storage.ErrNoTransaction", err)
	}

	if err := s.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := s.Free(bogus); !errors.Is(err, storage.ErrNoSuchObject) {
		t.Errorf("Free(bogus) = %v; want chain containing storage.ErrNoSuchObject", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Read(bogus); !errors.Is(err, storage.ErrClosed) {
		t.Errorf("Read after Close = %v; want chain containing storage.ErrClosed", err)
	}
}

// TestOpenFileErrorExposesPathError checks errors.As on the backing layer:
// OpenFile on an uncreatable path surfaces the *fs.PathError itself.
func TestOpenFileErrorExposesPathError(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing-dir", "backing.db")
	_, err := OpenFile(bad)
	if err == nil {
		t.Fatal("OpenFile with an uncreatable path succeeded")
	}
	var pathErr *fs.PathError
	if !errors.As(err, &pathErr) {
		t.Fatalf("OpenFile error %v; want chain containing *fs.PathError", err)
	}
}
