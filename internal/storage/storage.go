// Package storage defines the object-storage-manager abstraction that
// LabBase (the workflow wrapper) is built on, mirroring Architecture (C) of
// the LabFlow-1 paper: the benchmark's queries and updates are submitted to
// a workflow wrapper which stores its data through an interchangeable object
// storage manager.
//
// The repository provides four managers behind this interface:
//
//   - ostore:   a page-server store with page-grain locking, a bounded buffer
//     pool and a redo log (the ObjectStore v3.0 analog),
//   - texas:    a persistent heap that makes pages resident on first touch
//     and writes dirty pages back at commit (the Texas v0.3 analog),
//   - texas+TC: the same manager with client-directed clustering enabled,
//   - memstore: a main-memory manager with no persistence (the "-mm"
//     versions in the paper's Section 10 table).
//
// Objects are uninterpreted byte records addressed by stable OIDs. An OID
// never changes even if the record grows and must be physically relocated;
// managers maintain a per-segment object table for that indirection, much as
// LabBase's persistent C++ pointers remain valid under ObjectStore.
package storage

import (
	"errors"
	"fmt"
)

// OID identifies a persistent object. The zero OID is the nil reference.
//
// The encoding is segment(8 bits) << 56 | index(56 bits), so an OID is
// self-describing about which segment owns it.
type OID uint64

// NilOID is the null object reference.
const NilOID OID = 0

// MakeOID builds an OID from a segment and a per-segment index. Index 0 is
// reserved so that NilOID is never a valid object.
func MakeOID(seg SegmentID, index uint64) OID {
	return OID(uint64(seg)<<56 | (index & indexMask))
}

const indexMask = (uint64(1) << 56) - 1

// Segment returns the segment that owns the object.
func (o OID) Segment() SegmentID { return SegmentID(uint64(o) >> 56) }

// Index returns the per-segment object index.
func (o OID) Index() uint64 { return uint64(o) & indexMask }

// IsNil reports whether the OID is the null reference.
func (o OID) IsNil() bool { return o == NilOID }

// String implements fmt.Stringer.
func (o OID) String() string {
	if o.IsNil() {
		return "oid(nil)"
	}
	return fmt.Sprintf("oid(%s:%d)", o.Segment(), o.Index())
}

// SegmentID names one of the four LabBase storage segments. The paper:
// "LabBase uses four such segments, three of which contain relatively small
// amounts of frequently accessed data and one of which contains a relatively
// large amount of infrequently accessed data."
type SegmentID uint8

const (
	// SegCatalog holds the schema catalog: classes, attributes, states.
	// Small and hot.
	SegCatalog SegmentID = iota
	// SegMaterial holds sm_material records. Small and hot.
	SegMaterial
	// SegIndex holds access structures: most-recent indexes, extent chunks.
	// Small and hot.
	SegIndex
	// SegHistory holds sm_step records, history chunks and material sets —
	// the event history. Large and cold.
	SegHistory
	// NumSegments is the number of storage segments.
	NumSegments
)

// String implements fmt.Stringer.
func (s SegmentID) String() string {
	switch s {
	case SegCatalog:
		return "catalog"
	case SegMaterial:
		return "material"
	case SegIndex:
		return "index"
	case SegHistory:
		return "history"
	default:
		return fmt.Sprintf("segment(%d)", uint8(s))
	}
}

// Errors shared by all managers.
var (
	// ErrNoSuchObject is returned when an OID does not name a live object.
	ErrNoSuchObject = errors.New("storage: no such object")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("storage: manager is closed")
	// ErrSegmentFull is returned when a segment's object table is exhausted.
	ErrSegmentFull = errors.New("storage: segment object table full")
	// ErrNoTransaction is returned when a mutation happens outside Begin/Commit.
	ErrNoTransaction = errors.New("storage: no transaction in progress")
)

// Stats reports the resource counters the benchmark tables are built from.
// Faults is the portable analog of the paper's "majflt" column: the number
// of pages that had to be made resident from the backing store.
type Stats struct {
	// Faults counts pages loaded (made resident) from the backing store.
	Faults uint64
	// PageWrites counts pages written back to the backing store.
	PageWrites uint64
	// Reads, Writes and Allocs count object-level operations.
	Reads  uint64
	Writes uint64
	Allocs uint64
	// LockWaits counts lock acquisitions that had to block (ostore only).
	LockWaits uint64
	// SizeBytes is the footprint of the backing store (0 for main-memory
	// managers, matching the "—" entries in the paper's table).
	SizeBytes uint64
	// LiveObjects is the number of live objects.
	LiveObjects uint64
	// LiveBytes is the sum of live record payload sizes.
	LiveBytes uint64
}

// Sub returns s - prev, field by field, for interval accounting. Gauge
// fields (SizeBytes, LiveObjects, LiveBytes) keep their current value.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Faults:      s.Faults - prev.Faults,
		PageWrites:  s.PageWrites - prev.PageWrites,
		Reads:       s.Reads - prev.Reads,
		Writes:      s.Writes - prev.Writes,
		Allocs:      s.Allocs - prev.Allocs,
		LockWaits:   s.LockWaits - prev.LockWaits,
		SizeBytes:   s.SizeBytes,
		LiveObjects: s.LiveObjects,
		LiveBytes:   s.LiveBytes,
	}
}

// Manager is the object-storage-manager interface.
//
// Transactions are single-writer: Begin/Commit bracket a unit of work, and
// mutations outside a transaction return ErrNoTransaction. Managers are safe
// for concurrent use by multiple goroutines unless their documentation says
// otherwise (the texas manager, like the original, does not support
// concurrent access).
type Manager interface {
	// Name returns the version name used in reports, e.g. "OStore".
	Name() string

	// Allocate stores a new object in the given segment and returns its OID.
	Allocate(seg SegmentID, data []byte) (OID, error)

	// AllocateCluster stores a new object at the start of a fresh physical
	// cluster (its own page, where the manager supports placement), which
	// AllocateNear calls anchored at it then extend. LabBase starts one
	// cluster per root material so a whole clone family's audit trail stays
	// physically together. Managers without placement control treat this
	// exactly like Allocate.
	AllocateCluster(seg SegmentID, data []byte) (OID, error)

	// AllocateNear stores a new object as physically close to near as the
	// manager can manage: on near's page if it fits, else on the cluster's
	// successor pages, extending the cluster when they are all full.
	// Managers without clustering support treat this exactly like Allocate
	// into near's segment. This is the hook behind the paper's Texas+TC
	// version ("additional object clustering implemented in client code").
	AllocateNear(near OID, data []byte) (OID, error)

	// Read returns the object's current contents. The returned slice is a
	// private copy owned by the caller.
	Read(oid OID) ([]byte, error)

	// Write replaces the object's contents. Records may grow; the manager
	// relocates them transparently and the OID stays valid.
	Write(oid OID, data []byte) error

	// Free deletes the object.
	Free(oid OID) error

	// Root returns the database root OID (NilOID if unset) and SetRoot
	// durably records it. LabBase stores its catalog behind the root.
	Root() (OID, error)
	SetRoot(oid OID) error

	// Begin starts a transaction; Commit makes its effects durable.
	Begin() error
	Commit() error

	// Stats returns cumulative resource counters.
	Stats() Stats

	// Close releases all resources. Persistent managers flush first.
	Close() error
}
