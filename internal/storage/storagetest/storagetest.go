// Package storagetest provides a conformance suite run against every
// storage-manager implementation, plus a randomized model checker that
// compares a manager against an in-memory reference model.
package storagetest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"labflow/internal/storage"
)

// Factory creates a fresh manager for a subtest. The cleanup responsibility
// is the caller's via t.Cleanup inside the factory.
type Factory func(t *testing.T) storage.Manager

// Conformance runs the behavioural suite shared by all managers.
func Conformance(t *testing.T, newManager Factory) {
	t.Run("AllocateReadWrite", func(t *testing.T) { testAllocateReadWrite(t, newManager(t)) })
	t.Run("GrowRelocate", func(t *testing.T) { testGrowRelocate(t, newManager(t)) })
	t.Run("Overflow", func(t *testing.T) { testOverflow(t, newManager(t)) })
	t.Run("Free", func(t *testing.T) { testFree(t, newManager(t)) })
	t.Run("Root", func(t *testing.T) { testRoot(t, newManager(t)) })
	t.Run("TxnDiscipline", func(t *testing.T) { testTxnDiscipline(t, newManager(t)) })
	t.Run("Segments", func(t *testing.T) { testSegments(t, newManager(t)) })
	t.Run("AllocateNear", func(t *testing.T) { testAllocateNear(t, newManager(t)) })
	t.Run("AllocateCluster", func(t *testing.T) { testAllocateCluster(t, newManager(t)) })
	t.Run("RandomModel", func(t *testing.T) { testRandomModel(t, newManager(t)) })
}

func begin(t *testing.T, m storage.Manager) {
	t.Helper()
	if err := m.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
}

func commit(t *testing.T, m storage.Manager) {
	t.Helper()
	if err := m.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func testAllocateReadWrite(t *testing.T, m storage.Manager) {
	begin(t, m)
	oids := make([]storage.OID, 0, 100)
	for i := 0; i < 100; i++ {
		data := []byte(fmt.Sprintf("record-%03d", i))
		oid, err := m.Allocate(storage.SegHistory, data)
		if err != nil {
			t.Fatalf("Allocate %d: %v", i, err)
		}
		if oid.IsNil() {
			t.Fatalf("Allocate %d returned nil OID", i)
		}
		if oid.Segment() != storage.SegHistory {
			t.Fatalf("OID segment = %v, want history", oid.Segment())
		}
		oids = append(oids, oid)
	}
	commit(t, m)

	for i, oid := range oids {
		got, err := m.Read(oid)
		if err != nil {
			t.Fatalf("Read %v: %v", oid, err)
		}
		want := fmt.Sprintf("record-%03d", i)
		if string(got) != want {
			t.Fatalf("Read %v = %q, want %q", oid, got, want)
		}
	}

	begin(t, m)
	if err := m.Write(oids[7], []byte("updated")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	commit(t, m)
	got, err := m.Read(oids[7])
	if err != nil || string(got) != "updated" {
		t.Fatalf("Read after write = %q, %v; want updated", got, err)
	}
	// Neighbours untouched.
	got, err = m.Read(oids[8])
	if err != nil || string(got) != "record-008" {
		t.Fatalf("neighbour = %q, %v; want record-008", got, err)
	}

	if _, err := m.Read(storage.NilOID); !errors.Is(err, storage.ErrNoSuchObject) {
		t.Fatalf("Read(nil) error = %v, want ErrNoSuchObject", err)
	}
	if _, err := m.Read(storage.MakeOID(storage.SegMaterial, 999999)); !errors.Is(err, storage.ErrNoSuchObject) {
		t.Fatalf("Read(unallocated) error = %v, want ErrNoSuchObject", err)
	}
}

func testGrowRelocate(t *testing.T, m storage.Manager) {
	begin(t, m)
	oid, err := m.Allocate(storage.SegIndex, []byte("tiny"))
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	// Pack the page with other records so in-place growth is impossible.
	for i := 0; i < 200; i++ {
		if _, err := m.Allocate(storage.SegIndex, bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatalf("filler %d: %v", i, err)
		}
	}
	big := bytes.Repeat([]byte("x"), 3000)
	if err := m.Write(oid, big); err != nil {
		t.Fatalf("growing write: %v", err)
	}
	commit(t, m)
	got, err := m.Read(oid)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("Read after grow: len=%d err=%v, want len=%d", len(got), err, len(big))
	}
	// And shrink back.
	begin(t, m)
	if err := m.Write(oid, []byte("small again")); err != nil {
		t.Fatalf("shrinking write: %v", err)
	}
	commit(t, m)
	got, err = m.Read(oid)
	if err != nil || string(got) != "small again" {
		t.Fatalf("Read after shrink = %q, %v", got, err)
	}
}

func testOverflow(t *testing.T, m storage.Manager) {
	begin(t, m)
	sizes := []int{9000, 40000, 8178, 8179, 16368, 16369}
	oids := make([]storage.OID, len(sizes))
	wants := make([][]byte, len(sizes))
	rng := rand.New(rand.NewSource(42))
	for i, n := range sizes {
		data := make([]byte, n)
		rng.Read(data)
		oid, err := m.Allocate(storage.SegHistory, data)
		if err != nil {
			t.Fatalf("Allocate %d bytes: %v", n, err)
		}
		oids[i] = oid
		wants[i] = data
	}
	commit(t, m)
	for i, oid := range oids {
		got, err := m.Read(oid)
		if err != nil {
			t.Fatalf("Read %d bytes: %v", sizes[i], err)
		}
		if !bytes.Equal(got, wants[i]) {
			t.Fatalf("overflow record %d bytes corrupted", sizes[i])
		}
	}
	// Rewrite a big record bigger, then smaller than inline.
	begin(t, m)
	bigger := make([]byte, 60000)
	rng.Read(bigger)
	if err := m.Write(oids[0], bigger); err != nil {
		t.Fatalf("grow overflow: %v", err)
	}
	commit(t, m)
	got, err := m.Read(oids[0])
	if err != nil || !bytes.Equal(got, bigger) {
		t.Fatalf("overflow grow corrupted: len=%d err=%v", len(got), err)
	}
	begin(t, m)
	if err := m.Write(oids[0], []byte("now inline")); err != nil {
		t.Fatalf("shrink overflow to inline: %v", err)
	}
	commit(t, m)
	got, err = m.Read(oids[0])
	if err != nil || string(got) != "now inline" {
		t.Fatalf("overflow->inline = %q, %v", got, err)
	}
}

func testFree(t *testing.T, m storage.Manager) {
	begin(t, m)
	a, _ := m.Allocate(storage.SegMaterial, []byte("a"))
	b, _ := m.Allocate(storage.SegMaterial, []byte("b"))
	big, _ := m.Allocate(storage.SegHistory, bytes.Repeat([]byte("z"), 20000))
	if err := m.Free(a); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := m.Free(big); err != nil {
		t.Fatalf("Free overflow: %v", err)
	}
	commit(t, m)
	if _, err := m.Read(a); !errors.Is(err, storage.ErrNoSuchObject) {
		t.Fatalf("Read freed = %v, want ErrNoSuchObject", err)
	}
	if got, err := m.Read(b); err != nil || string(got) != "b" {
		t.Fatalf("survivor = %q, %v", got, err)
	}
	begin(t, m)
	if err := m.Free(a); !errors.Is(err, storage.ErrNoSuchObject) {
		t.Fatalf("double Free = %v, want ErrNoSuchObject", err)
	}
	if err := m.Write(a, []byte("x")); !errors.Is(err, storage.ErrNoSuchObject) {
		t.Fatalf("Write freed = %v, want ErrNoSuchObject", err)
	}
	commit(t, m)
	st := m.Stats()
	if st.LiveObjects != 1 {
		t.Errorf("LiveObjects = %d, want 1", st.LiveObjects)
	}
	if st.LiveBytes != 1 {
		t.Errorf("LiveBytes = %d, want 1", st.LiveBytes)
	}
}

func testRoot(t *testing.T, m storage.Manager) {
	if r, err := m.Root(); err != nil || !r.IsNil() {
		t.Fatalf("fresh Root = %v, %v; want nil", r, err)
	}
	begin(t, m)
	oid, err := m.Allocate(storage.SegCatalog, []byte("catalog"))
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := m.SetRoot(oid); err != nil {
		t.Fatalf("SetRoot: %v", err)
	}
	commit(t, m)
	r, err := m.Root()
	if err != nil || r != oid {
		t.Fatalf("Root = %v, %v; want %v", r, err, oid)
	}
}

func testTxnDiscipline(t *testing.T, m storage.Manager) {
	if _, err := m.Allocate(storage.SegHistory, []byte("x")); !errors.Is(err, storage.ErrNoTransaction) {
		t.Fatalf("Allocate outside txn = %v, want ErrNoTransaction", err)
	}
	if err := m.Commit(); !errors.Is(err, storage.ErrNoTransaction) {
		t.Fatalf("Commit outside txn = %v, want ErrNoTransaction", err)
	}
	begin(t, m)
	if err := m.Begin(); err == nil {
		t.Fatal("nested Begin should fail")
	}
	oid, err := m.Allocate(storage.SegHistory, []byte("x"))
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	commit(t, m)
	if err := m.Write(oid, []byte("y")); !errors.Is(err, storage.ErrNoTransaction) {
		t.Fatalf("Write outside txn = %v, want ErrNoTransaction", err)
	}
	// Reads are allowed outside transactions.
	if _, err := m.Read(oid); err != nil {
		t.Fatalf("Read outside txn: %v", err)
	}
}

func testSegments(t *testing.T, m storage.Manager) {
	begin(t, m)
	var oids [storage.NumSegments]storage.OID
	for seg := storage.SegmentID(0); seg < storage.NumSegments; seg++ {
		oid, err := m.Allocate(seg, []byte(seg.String()))
		if err != nil {
			t.Fatalf("Allocate seg %v: %v", seg, err)
		}
		if oid.Segment() != seg {
			t.Fatalf("OID segment = %v, want %v", oid.Segment(), seg)
		}
		oids[seg] = oid
	}
	commit(t, m)
	for seg, oid := range oids {
		got, err := m.Read(oid)
		if err != nil || string(got) != storage.SegmentID(seg).String() {
			t.Fatalf("seg %d read = %q, %v", seg, got, err)
		}
	}
	if _, err := m.Read(storage.MakeOID(storage.NumSegments+1, 1)); !errors.Is(err, storage.ErrNoSuchObject) {
		t.Fatalf("bad-segment read = %v, want ErrNoSuchObject", err)
	}
}

func testAllocateNear(t *testing.T, m storage.Manager) {
	begin(t, m)
	anchor, err := m.Allocate(storage.SegHistory, []byte("anchor"))
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	near, err := m.AllocateNear(anchor, []byte("companion"))
	if err != nil {
		t.Fatalf("AllocateNear: %v", err)
	}
	if near.Segment() != storage.SegHistory {
		t.Fatalf("AllocateNear segment = %v, want history", near.Segment())
	}
	commit(t, m)
	got, err := m.Read(near)
	if err != nil || string(got) != "companion" {
		t.Fatalf("Read near = %q, %v", got, err)
	}
	begin(t, m)
	if _, err := m.AllocateNear(storage.NilOID, []byte("x")); err == nil {
		t.Fatal("AllocateNear(nil) should fail")
	}
	commit(t, m)
}

func testAllocateCluster(t *testing.T, m storage.Manager) {
	begin(t, m)
	head, err := m.AllocateCluster(storage.SegHistory, []byte("cluster head"))
	if err != nil {
		t.Fatalf("AllocateCluster: %v", err)
	}
	if head.Segment() != storage.SegHistory {
		t.Fatalf("cluster OID segment = %v", head.Segment())
	}
	// Extend the cluster well past one page.
	prev := head
	var members []storage.OID
	for i := 0; i < 200; i++ {
		oid, err := m.AllocateNear(prev, bytes.Repeat([]byte{byte(i)}, 200))
		if err != nil {
			t.Fatalf("AllocateNear %d: %v", i, err)
		}
		members = append(members, oid)
		prev = oid
	}
	// Big records route through the overflow path.
	big, err := m.AllocateCluster(storage.SegHistory, bytes.Repeat([]byte("b"), 20000))
	if err != nil {
		t.Fatalf("AllocateCluster big: %v", err)
	}
	commit(t, m)
	if got, err := m.Read(head); err != nil || string(got) != "cluster head" {
		t.Fatalf("head = %q, %v", got, err)
	}
	for i, oid := range members {
		got, err := m.Read(oid)
		if err != nil || len(got) != 200 || got[0] != byte(i) {
			t.Fatalf("member %d = %d bytes, %v", i, len(got), err)
		}
	}
	if got, err := m.Read(big); err != nil || len(got) != 20000 {
		t.Fatalf("big = %d bytes, %v", len(got), err)
	}
}

// testRandomModel drives a random operation sequence against the manager and
// an in-memory model, checking full agreement at every step and at the end.
func testRandomModel(t *testing.T, m storage.Manager) {
	rng := rand.New(rand.NewSource(7))
	model := make(map[storage.OID][]byte)
	var live []storage.OID

	randData := func() []byte {
		var n int
		switch rng.Intn(10) {
		case 0:
			n = rng.Intn(20000) // overflow-sized
		case 1:
			n = 0
		default:
			n = rng.Intn(500)
		}
		b := make([]byte, n)
		rng.Read(b)
		return b
	}

	begin(t, m)
	for step := 0; step < 3000; step++ {
		if step%100 == 99 {
			commit(t, m)
			begin(t, m)
		}
		switch op := rng.Intn(10); {
		case op < 4 || len(live) == 0: // allocate
			data := randData()
			seg := storage.SegmentID(rng.Intn(int(storage.NumSegments)))
			var oid storage.OID
			var err error
			if len(live) > 0 && rng.Intn(2) == 0 {
				oid, err = m.AllocateNear(live[rng.Intn(len(live))], data)
				seg = oid.Segment()
			} else {
				oid, err = m.Allocate(seg, data)
			}
			if err != nil {
				t.Fatalf("step %d: Allocate: %v", step, err)
			}
			if _, dup := model[oid]; dup {
				t.Fatalf("step %d: duplicate OID %v", step, oid)
			}
			model[oid] = data
			live = append(live, oid)
		case op < 7: // write
			oid := live[rng.Intn(len(live))]
			data := randData()
			if err := m.Write(oid, data); err != nil {
				t.Fatalf("step %d: Write %v: %v", step, oid, err)
			}
			model[oid] = data
		case op < 8: // free
			i := rng.Intn(len(live))
			oid := live[i]
			if err := m.Free(oid); err != nil {
				t.Fatalf("step %d: Free %v: %v", step, oid, err)
			}
			delete(model, oid)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		default: // read
			oid := live[rng.Intn(len(live))]
			got, err := m.Read(oid)
			if err != nil {
				t.Fatalf("step %d: Read %v: %v", step, oid, err)
			}
			if !bytes.Equal(got, model[oid]) {
				t.Fatalf("step %d: Read %v mismatch: got %d bytes, want %d", step, oid, len(got), len(model[oid]))
			}
		}
	}
	commit(t, m)

	for oid, want := range model {
		got, err := m.Read(oid)
		if err != nil {
			t.Fatalf("final Read %v: %v", oid, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("final Read %v mismatch", oid)
		}
	}
	st := m.Stats()
	if st.LiveObjects != uint64(len(model)) {
		t.Errorf("LiveObjects = %d, want %d", st.LiveObjects, len(model))
	}
	var wantBytes uint64
	for _, v := range model {
		wantBytes += uint64(len(v))
	}
	if st.LiveBytes != wantBytes {
		t.Errorf("LiveBytes = %d, want %d", st.LiveBytes, wantBytes)
	}
}
