// Package ostore implements the ObjectStore-style storage manager: a page
// server that mediates all access to the database, lock-based concurrency
// control at page grain, a bounded client buffer pool, and a redo log that
// makes commits atomic.
//
// This is the "OStore" version in the paper's Section-10 table. The
// behaviours the benchmark stresses are reproduced:
//
//   - cache misses go through a server goroutine (ObjectStore's page server
//     "mediates all access to the database"), while hits are served from the
//     client cache;
//   - page locks are acquired as pages are touched and released at commit
//     (strict two-phase locking);
//   - the buffer pool is bounded, so locality of reference governs the fault
//     rate as the database outgrows the pool;
//   - commits write a redo record (page images) to a log before updating the
//     database in place, and Open replays the complete records a crash left
//     behind, so a crash between the log write and the page write-back loses
//     nothing.
//
// Since the checkpoint/replication work (DESIGN §12) the log is an
// append-only sequence of LSN-numbered records behind a checkpoint cursor
// (the repl package's protocol): records retire in batches at periodic
// checkpoints instead of one Truncate per commit, which bounds reopen replay
// to the delta since the last checkpoint and gives every commit a stable
// record that can be shipped to a warm standby (Options.Shipper) before it
// retires.
package ostore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"labflow/internal/storage"
	"labflow/internal/storage/pagefile"
	"labflow/internal/storage/repl"
)

// DefaultPoolPages is the buffer-pool capacity used when Options leaves it 0.
const DefaultPoolPages = 512

// DefaultCheckpointEvery is the number of flushed commit groups between
// checkpoints when Options leaves CheckpointEvery 0. Reopen replays at most
// this many records.
const DefaultCheckpointEvery = 8

// LogFile is the redo-log medium. Production use wraps an *os.File (Open
// does this from LogPath); tests and the crashtest harness substitute
// fault-injecting implementations through Options.Log. All I/O is
// positioned, so implementations need no seek state.
type LogFile interface {
	io.ReaderAt
	io.WriterAt
	// Truncate discards the log; records are retired this way at each
	// checkpoint, once their pages are in place and synced.
	Truncate(size int64) error
	// Sync forces the log to stable storage (the SyncLog option).
	Sync() error
	// Size returns the current log length in bytes.
	Size() (int64, error)
	// Close releases the medium.
	Close() error
}

// osLog adapts *os.File to LogFile.
type osLog struct{ *os.File }

// Size implements LogFile.
func (l osLog) Size() (int64, error) {
	info, err := l.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// Options configures Open.
type Options struct {
	// Path is the database file. Empty means a volatile in-memory backing
	// (used by tests).
	Path string
	// LogPath is the redo-log file; defaults to Path+".log". Ignored when
	// Path is empty (no log, no recovery).
	LogPath string
	// Backing, if non-nil, is used instead of opening Path — the hook the
	// fault-injection harness threads its wrapped media through.
	Backing pagefile.Backing
	// Log, if non-nil, is used instead of opening LogPath. Recovery runs
	// whenever a log is present, however it was supplied.
	Log LogFile
	// PoolPages bounds the client buffer pool (default DefaultPoolPages).
	PoolPages int
	// SyncLog fsyncs the log at each commit. Off by default: the benchmark
	// measures CPU and locality, not disk latency, and the paper's runs
	// were likewise not fsync-bound.
	SyncLog bool
	// CheckpointEvery is the number of flushed commit groups between
	// checkpoints (default DefaultCheckpointEvery). 1 retires every record
	// as soon as its pages are in place — the historical per-commit
	// truncation. Larger values amortize the checkpoint sync and leave a
	// longer (but still bounded) replay tail.
	CheckpointEvery int
	// Shipper, if non-nil, receives every redo record at its durability
	// point, before the commit is acknowledged and long before the record
	// can retire — the warm-standby feed. A Ship error fails the commit.
	Shipper repl.Shipper
	// Recovery, if non-nil, is filled with what Open's recovery had to do
	// (checkpoint cursor found, records replayed, next LSN).
	Recovery *repl.RecoveryInfo
	// Name overrides the report name ("OStore" by default).
	Name string
}

// Open opens or creates an ObjectStore-style store, replaying the redo log
// if an interrupted commit is found. On error every medium Open acquired
// (or was handed) is closed exactly once.
func Open(opts Options) (storage.Manager, error) {
	name := opts.Name
	if name == "" {
		name = "OStore"
	}
	pool := opts.PoolPages
	if pool <= 0 {
		pool = DefaultPoolPages
	}
	if pool < 16 {
		pool = 16 // room for the handful of simultaneously pinned pages
	}

	logFile := opts.Log
	if logFile == nil && opts.Path != "" {
		logPath := opts.LogPath
		if logPath == "" {
			logPath = opts.Path + ".log"
		}
		f, err := os.OpenFile(logPath, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, fmt.Errorf("ostore: open log: %w", err)
		}
		logFile = osLog{f}
	}
	backing := opts.Backing
	if backing == nil {
		if opts.Path == "" {
			backing = pagefile.NewMem()
		} else {
			fb, err := pagefile.OpenFile(opts.Path)
			if err != nil {
				if logFile != nil {
					logFile.Close()
				}
				return nil, fmt.Errorf("ostore: %w", err)
			}
			backing = fb
		}
	}
	nextLSN := uint64(1)
	var pending []pendingRecord
	if logFile != nil {
		n, replayed, err := recoverLog(logFile, backing, opts.SyncLog, opts.Recovery)
		if err != nil {
			backing.Close()
			logFile.Close()
			return nil, fmt.Errorf("ostore: recovery: %w", err)
		}
		nextLSN = n
		if opts.Shipper != nil {
			// A replayed record reached its durability point here but the
			// crash may have cut it off before (or mid-) shipment, leaving
			// the follower behind while the stream would resume past it.
			// Queue the replayed records for redelivery ahead of the next
			// commit group; records the follower already holds are retired
			// there without retransmission (see resolvePendingShips).
			for _, rec := range replayed {
				pending = append(pending, pendingRecord{lsn: rec.LSN, rec: repl.EncodeRecord(rec.LSN, rec.Pages)})
			}
		}
	} else if opts.Recovery != nil {
		*opts.Recovery = repl.RecoveryInfo{NextLSN: nextLSN}
	}

	ckptEvery := opts.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = DefaultCheckpointEvery
	}
	p := &pager{
		backing:   backing,
		log:       logFile,
		syncLog:   opts.SyncLog,
		shipper:   opts.Shipper,
		nextLSN:   nextLSN,
		pending:   pending,
		logEnd:    repl.CursorSize,
		ckptEvery: ckptEvery,
		pool:      make(map[pagefile.PageID]*frame),
		capacity:  pool,
		locks:     make(map[pagefile.PageID]pagefile.Mode),
		faultReq:  make(chan faultRequest),
		commitReq: make(chan *commitBatch, commitQueueDepth),
		done:      make(chan struct{}),
		flushDone: make(chan struct{}),
	}
	go p.serve()
	go p.flushLoop()
	// ObjectStore-style compact page layout: records are packed exactly
	// (nil slack), which is why this manager's database files are smaller
	// than the texas manager's, as in the paper's table.
	store, err := pagefile.New(name, p, nil)
	if err != nil {
		p.Close()
		return nil, fmt.Errorf("ostore: %w", err)
	}
	return store, nil
}

// recoverLog replays the contiguous run of complete redo records the last
// session left past its checkpoint cursor, then checkpoints so the next
// reopen starts from zero replay. Work is O(records since the last
// checkpoint), never O(history): everything before the cursor was synced
// into the backing when the cursor was written. A torn tail record is
// discarded — its transaction never reached the durability point. Returns
// the next LSN to assign and the replayed records (whose page images stay
// valid: they alias the scan buffer).
func recoverLog(log LogFile, backing pagefile.Backing, syncLog bool, info *repl.RecoveryInfo) (uint64, []repl.Record, error) {
	cursorLSN, records, err := repl.ScanLog(log)
	if err != nil {
		return 0, nil, err
	}
	last := cursorLSN
	for _, rec := range records {
		if err := repl.ApplyRecord(backing, rec); err != nil {
			return 0, nil, fmt.Errorf("replay record %d: %w", rec.LSN, err)
		}
		last = rec.LSN
	}
	if len(records) > 0 {
		if err := backing.Sync(); err != nil {
			return 0, nil, err
		}
	}
	if err := repl.Checkpoint(log, last, syncLog); err != nil {
		return 0, nil, err
	}
	if info != nil {
		*info = repl.RecoveryInfo{CheckpointLSN: cursorLSN, Replayed: len(records), NextLSN: last + 1}
	}
	return last + 1, records, nil
}

type frame struct {
	pf    pagefile.Frame
	pins  int
	dirty bool
	ref   bool
}

type faultRequest struct {
	id    pagefile.PageID
	buf   []byte
	reply chan error
}

// commitBatch carries one transaction's dirty pages to the group-commit
// flusher. done receives exactly one error (nil on success) once the batch
// is durable and written back in place.
type commitBatch struct {
	frames []*frame
	done   chan error
}

// commitQueueDepth bounds how many commit batches can queue behind an
// in-progress flush; queued batches are coalesced into the next single log
// write. The bound only back-pressures pathological fan-in — committers
// block on enqueue once it is full.
const commitQueueDepth = 64

// pager implements pagefile.Pager as an ObjectStore-style client cache in
// front of a page-server goroutine.
type pager struct {
	mu       sync.Mutex
	backing  pagefile.Backing
	log      LogFile
	syncLog  bool
	pool     map[pagefile.PageID]*frame
	ring     []*frame
	hand     int
	capacity int
	locks    map[pagefile.PageID]pagefile.Mode // locks held by the current transaction
	stats    pagefile.PagerStats
	closed   bool

	// Log/shipping state, touched only by the flushLoop goroutine (plus
	// Open, and Close after it has waited for flushDone), so it needs no
	// locking.
	shipper   repl.Shipper
	nextLSN   uint64
	pending   []pendingRecord
	logEnd    int64
	ckptEvery int
	sinceCkpt int

	faultReq  chan faultRequest
	commitReq chan *commitBatch
	done      chan struct{}
	flushDone chan struct{} // closed when flushLoop exits
}

// pendingRecord is a redo record that reached its local durability point
// but was never acked by the follower: its Ship failed, or it was replayed
// from the log by a reopen. The LSN is burned — these exact bytes are
// redelivered ahead of the next commit group (resolvePendingShips) so the
// stream never reuses an LSN for different contents.
type pendingRecord struct {
	lsn uint64
	rec []byte
}

// serve is the page-server goroutine: every cache miss is a round trip here,
// the analog of ObjectStore's server mediating database access.
func (p *pager) serve() {
	for {
		select {
		case req := <-p.faultReq:
			req.reply <- p.backing.ReadPage(req.id, req.buf)
		case <-p.done:
			return
		}
	}
}

// lockLocked records (and upgrades) the page lock held by the running
// transaction. With the object layer serialized above us the lock table
// never blocks in-process; it exists so lock traffic is accounted and so
// commit-time release is observable, as in strict 2PL.
func (p *pager) lockLocked(id pagefile.PageID, mode pagefile.Mode) {
	held, ok := p.locks[id]
	if !ok {
		p.locks[id] = mode
		return
	}
	if mode == pagefile.ModeWrite && held == pagefile.ModeRead {
		p.locks[id] = pagefile.ModeWrite // lock upgrade
	}
}

func (p *pager) Pin(id pagefile.PageID, mode pagefile.Mode) (*pagefile.Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, pagefile.ErrPagerClosed
	}
	p.lockLocked(id, mode)
	if fr, ok := p.pool[id]; ok {
		fr.pins++
		fr.ref = true
		return &fr.pf, nil
	}
	if err := p.makeRoomLocked(); err != nil {
		return nil, err
	}
	buf := make([]byte, pagefile.PageSize)
	req := faultRequest{id: id, buf: buf, reply: make(chan error, 1)}
	p.faultReq <- req
	if err := <-req.reply; err != nil {
		return nil, fmt.Errorf("ostore: fault page %d: %w", id, err)
	}
	p.stats.Faults++
	fr := &frame{pf: pagefile.Frame{ID: id, Data: buf}, pins: 1, ref: true}
	fr.pf.Priv = fr
	p.pool[id] = fr
	p.ring = append(p.ring, fr)
	return &fr.pf, nil
}

// makeRoomLocked evicts one clean, unpinned page when the pool is full. The
// pool is no-steal: dirty pages stay resident until commit so the redo-only
// log suffices for atomicity. If everything is pinned or dirty the pool
// temporarily overshoots.
func (p *pager) makeRoomLocked() error {
	if len(p.pool) < p.capacity {
		return nil
	}
	for sweep := 0; sweep < 2*len(p.ring); sweep++ {
		if len(p.ring) == 0 {
			return nil
		}
		p.hand %= len(p.ring)
		fr := p.ring[p.hand]
		if fr.pins > 0 || fr.dirty {
			p.hand++
			continue
		}
		if fr.ref {
			fr.ref = false
			p.hand++
			continue
		}
		delete(p.pool, fr.pf.ID)
		p.ring[p.hand] = p.ring[len(p.ring)-1]
		p.ring = p.ring[:len(p.ring)-1]
		p.stats.Evictions++
		return nil
	}
	return nil
}

func (p *pager) Unpin(f *pagefile.Frame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr := f.Priv.(*frame)
	fr.pins--
	if dirty {
		fr.dirty = true
	}
}

func (p *pager) AllocPage() (*pagefile.Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, pagefile.ErrPagerClosed
	}
	if err := p.makeRoomLocked(); err != nil {
		return nil, err
	}
	id, err := p.backing.Grow()
	if err != nil {
		return nil, fmt.Errorf("ostore: grow: %w", err)
	}
	p.lockLocked(id, pagefile.ModeWrite)
	fr := &frame{pf: pagefile.Frame{ID: id, Data: make([]byte, pagefile.PageSize)}, pins: 1, dirty: true, ref: true}
	fr.pf.Priv = fr
	p.pool[id] = fr
	p.ring = append(p.ring, fr)
	return &fr.pf, nil
}

func (p *pager) Begin() error { return nil }

// Commit hands the transaction's dirty pages to the group-commit flusher
// and returns only after its batch is durable: logged, forced when SyncLog
// is set, and written back in place. Commits that arrive while a flush is
// in progress queue up and are coalesced into the next single log write, so
// concurrent committers share one durability point. With a single committer
// the protocol degrades to exactly the old one-record-per-commit behaviour
// — same log bytes, same page-write counts — which keeps recovery and the
// simulated statistics byte-compatible.
func (p *pager) Commit() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return pagefile.ErrPagerClosed
	}
	var dirty []*frame
	for _, fr := range p.ring {
		if fr.dirty {
			dirty = append(dirty, fr)
		}
	}
	if len(dirty) == 0 {
		clear(p.locks) // strict 2PL: all locks released at commit
		p.trimLocked()
		p.mu.Unlock()
		return nil
	}
	// Enqueue outside mu so other committers can queue behind us to form a
	// group, and so the flusher can take mu for its stats update. The frame
	// images are stable while we wait: the object layer serializes access
	// per store, and this transaction's pages stay dirty (hence unevictable
	// under no-steal) until we mark them clean below.
	p.mu.Unlock()
	b := &commitBatch{frames: dirty, done: make(chan error, 1)}
	select {
	case p.commitReq <- b:
	case <-p.done:
		return pagefile.ErrPagerClosed
	}
	var err error
	select {
	case err = <-b.done:
	case <-p.done:
		return pagefile.ErrPagerClosed
	}
	if err != nil {
		return err
	}

	p.mu.Lock()
	for _, fr := range dirty {
		fr.dirty = false
	}
	clear(p.locks) // strict 2PL: all locks released at commit
	p.trimLocked()
	p.mu.Unlock()
	return nil
}

// flushLoop is the group-commit daemon. It takes one queued batch, drains
// whatever else has queued behind it, and flushes the union as a single
// redo record: one log write, one optional fsync, one pass of in-place page
// writes, one truncate. Every batch in the group is then released at once.
func (p *pager) flushLoop() {
	defer close(p.flushDone)
	for {
		// Prefer shutdown over another batch when both are ready: Close
		// waits on flushDone before it touches the log and backing.
		select {
		case <-p.done:
			return
		default:
		}
		select {
		case b := <-p.commitReq:
			batches := []*commitBatch{b}
		drain:
			for {
				select {
				case nb := <-p.commitReq:
					batches = append(batches, nb)
				default:
					break drain
				}
			}
			err := p.flushBatches(batches)
			for _, b := range batches {
				b.done <- err
			}
		case <-p.done:
			return
		}
	}
}

// flushBatches forms one redo record from the union of the batches' dirty
// pages and applies it. Pages keep first-dirtied order; a page appearing in
// several batches keeps the latest image — the same state replaying the
// batches in order would produce. The record is appended to the log under
// the next LSN, shipped to the standby (if any) once durable, applied in
// place, and eventually retired by a periodic checkpoint instead of a
// per-commit truncation.
func (p *pager) flushBatches(batches []*commitBatch) error {
	var order []*frame
	seen := make(map[pagefile.PageID]int, len(batches[0].frames))
	for _, b := range batches {
		for _, fr := range b.frames {
			if i, dup := seen[fr.pf.ID]; dup {
				order[i] = fr // later batch supersedes the image
				continue
			}
			seen[fr.pf.ID] = len(order)
			order = append(order, fr)
		}
	}
	if len(order) == 0 {
		return nil
	}
	// Records whose earlier shipment was never acked must land on the
	// follower before this group's record: acking LSN n promises the
	// follower holds everything through n. A redelivery failure fails the
	// group before it burns a new LSN.
	if p.shipper != nil && len(p.pending) > 0 {
		if err := p.resolvePendingShips(); err != nil {
			return err
		}
	}
	if p.log != nil || p.shipper != nil {
		pages := make([]repl.PageImage, len(order))
		for i, fr := range order {
			pages[i] = repl.PageImage{ID: fr.pf.ID, Data: fr.pf.Data}
		}
		buf := repl.EncodeRecord(p.nextLSN, pages)
		if p.log != nil {
			if _, err := p.log.WriteAt(buf, p.logEnd); err != nil {
				return fmt.Errorf("ostore: write log: %w", err)
			}
			if p.syncLog {
				if err := p.log.Sync(); err != nil {
					return fmt.Errorf("ostore: sync log: %w", err)
				}
			}
		}
		// The record is durable locally; it must reach the standby before any
		// client learns the commit succeeded. A Ship failure fails the whole
		// group — the record stays in the log, so the commit lands on reopen
		// even though its clients saw an error (the crash-inside-Commit
		// "either side" contract). The LSN is burned either way: the exact
		// bytes are kept for redelivery ahead of the next group, and the
		// stream advances past them, so an LSN is never reused for different
		// contents (the invariant the standby's duplicate re-ack relies on).
		if p.shipper != nil {
			if err := p.shipper.Ship(p.nextLSN, buf); err != nil {
				lsn := p.nextLSN
				p.pending = append(p.pending, pendingRecord{lsn: lsn, rec: buf})
				p.nextLSN++
				if p.log != nil {
					p.logEnd += int64(len(buf))
				}
				return fmt.Errorf("ostore: ship record %d: %w", lsn, err)
			}
		}
		p.nextLSN++
		p.logEnd += int64(len(buf))
	}
	// Durability point passed: apply in place.
	for _, fr := range order {
		if err := p.backing.WritePage(fr.pf.ID, fr.pf.Data); err != nil {
			return fmt.Errorf("ostore: commit write page %d: %w", fr.pf.ID, err)
		}
	}
	p.mu.Lock()
	p.stats.PageWrites += uint64(len(order))
	p.mu.Unlock()
	if p.log != nil {
		p.sinceCkpt++
		every := p.ckptEvery
		if every < 1 {
			every = 1
		}
		if p.sinceCkpt >= every {
			// Checkpoint: force the applied pages down, then retire every
			// logged record behind a fresh cursor.
			if err := p.backing.Sync(); err != nil {
				return fmt.Errorf("ostore: checkpoint sync: %w", err)
			}
			if err := repl.Checkpoint(p.log, p.nextLSN-1, p.syncLog); err != nil {
				return fmt.Errorf("ostore: checkpoint: %w", err)
			}
			p.sinceCkpt = 0
			p.logEnd = repl.CursorSize
		}
	}
	return nil
}

// resolvePendingShips redelivers records whose shipment was never acked —
// a Ship that returned a transport error, or records replayed from the log
// at Open. When the shipper can report the follower's state, records the
// follower already holds (shipped successfully with the ack lost) are
// retired without retransmission; the rest go out in LSN order with their
// original bytes. Any failure leaves the unresolved tail queued and fails
// the caller's commit group.
func (p *pager) resolvePendingShips() error {
	if sq, ok := p.shipper.(repl.StateShipper); ok {
		last, err := sq.FollowerLSN()
		if err != nil {
			return fmt.Errorf("ostore: query follower state: %w", err)
		}
		kept := p.pending[:0]
		for _, pr := range p.pending {
			if pr.lsn > last {
				kept = append(kept, pr)
			}
		}
		p.pending = kept
	}
	for len(p.pending) > 0 {
		pr := p.pending[0]
		if err := p.shipper.Ship(pr.lsn, pr.rec); err != nil {
			return fmt.Errorf("ostore: re-ship record %d: %w", pr.lsn, err)
		}
		p.pending = p.pending[1:]
	}
	return nil
}

// trimLocked shrinks the pool back to capacity after a commit. During a
// transaction the no-steal policy lets the pool overshoot (dirty pages are
// unevictable); once everything is clean the overshoot is released.
func (p *pager) trimLocked() {
	for len(p.pool) > p.capacity {
		evicted := false
		for sweep := 0; sweep < 2*len(p.ring) && len(p.pool) > p.capacity; sweep++ {
			p.hand %= len(p.ring)
			fr := p.ring[p.hand]
			if fr.pins > 0 || fr.dirty {
				p.hand++
				continue
			}
			if fr.ref {
				fr.ref = false
				p.hand++
				continue
			}
			delete(p.pool, fr.pf.ID)
			p.ring[p.hand] = p.ring[len(p.ring)-1]
			p.ring = p.ring[:len(p.ring)-1]
			p.stats.Evictions++
			evicted = true
		}
		if !evicted {
			return
		}
	}
}

func (p *pager) Stats() pagefile.PagerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

func (p *pager) SizeBytes() uint64 { return p.backing.SizeBytes() }

func (p *pager) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	// Stop the daemons, then wait for an in-flight group flush to drain:
	// flushBatches writes the log and backing and owns nextLSN/logEnd, so
	// none of the teardown below may overlap it. The wait must happen
	// outside p.mu — flushBatches takes p.mu for its stats update.
	close(p.done)
	<-p.flushDone
	p.mu.Lock()
	var errs []error
	for _, fr := range p.ring {
		if fr.dirty {
			if err := p.backing.WritePage(fr.pf.ID, fr.pf.Data); err != nil {
				errs = append(errs, err)
			}
			p.stats.PageWrites++
		}
	}
	if err := p.backing.Sync(); err != nil {
		errs = append(errs, err)
	}
	if err := p.backing.Close(); err != nil {
		errs = append(errs, err)
	}
	if p.log != nil {
		// Final checkpoint: the backing was just synced, so every logged
		// record is retired and the next open replays nothing.
		if err := repl.Checkpoint(p.log, p.nextLSN-1, p.syncLog); err != nil {
			errs = append(errs, err)
		}
		if err := p.log.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	p.mu.Unlock()
	return errors.Join(errs...)
}
