package ostore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"labflow/internal/storage"
	"labflow/internal/storage/pagefile"
	"labflow/internal/storage/repl"
	"labflow/internal/storage/storagetest"
)

func openTemp(t *testing.T, opts Options) storage.Manager {
	t.Helper()
	if opts.Path == "" {
		opts.Path = filepath.Join(t.TempDir(), "ostore.db")
	}
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestConformanceFile(t *testing.T) {
	storagetest.Conformance(t, func(t *testing.T) storage.Manager {
		return openTemp(t, Options{})
	})
}

func TestConformanceSmallPool(t *testing.T) {
	storagetest.Conformance(t, func(t *testing.T) storage.Manager {
		return openTemp(t, Options{PoolPages: 20})
	})
}

func TestConformanceMemBacking(t *testing.T) {
	storagetest.Conformance(t, func(t *testing.T) storage.Manager {
		m, err := Open(Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		return m
	})
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ostore.db")
	m, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	var oids []storage.OID
	for i := 0; i < 300; i++ {
		oid, err := m.Allocate(storage.SegMaterial, []byte(fmt.Sprintf("m-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	if err := m.SetRoot(oids[42]); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	for i, oid := range oids {
		got, err := m2.Read(oid)
		if err != nil || string(got) != fmt.Sprintf("m-%d", i) {
			t.Fatalf("Read %v = %q, %v", oid, got, err)
		}
	}
	if root, _ := m2.Root(); root != oids[42] {
		t.Fatalf("Root = %v, want %v", root, oids[42])
	}
}

// TestRecovery simulates a crash after the redo log is written but before
// the database pages are updated: the data must reappear on reopen.
func TestRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ostore.db")
	logPath := path + ".log"

	// Build a committed baseline database.
	m, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	oid, err := m.Allocate(storage.SegMaterial, []byte("before crash"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetRoot(oid); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Forge a complete redo record that rewrites the object's page with a
	// recognisable image, simulating a crash between log force and page
	// write-back. We find the page by scanning the db file for the record.
	db, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pageOf := -1
	for p := 0; p*pagefile.PageSize < len(db); p++ {
		page := db[p*pagefile.PageSize : (p+1)*pagefile.PageSize]
		if idx := indexOf(page, []byte("before crash")); idx >= 0 {
			pageOf = p
			break
		}
	}
	if pageOf < 0 {
		t.Fatal("did not find record page in database file")
	}
	img := make([]byte, pagefile.PageSize)
	copy(img, db[pageOf*pagefile.PageSize:(pageOf+1)*pagefile.PageSize])
	copy(img[indexOf(img, []byte("before crash")):], []byte("after replay"))

	log := repl.EncodeCursor(1)
	log = append(log, repl.EncodeRecord(2, []repl.PageImage{{ID: pagefile.PageID(pageOf), Data: img}})...)
	if err := os.WriteFile(logPath, log, 0o644); err != nil {
		t.Fatal(err)
	}

	var info repl.RecoveryInfo
	m2, err := Open(Options{Path: path, Recovery: &info})
	if err != nil {
		t.Fatalf("reopen with log: %v", err)
	}
	defer m2.Close()
	got, err := m2.Read(oid)
	if err != nil || string(got) != "after replay" {
		t.Fatalf("after recovery Read = %q, %v; want %q", got, err, "after replay")
	}
	if info.CheckpointLSN != 1 || info.Replayed != 1 || info.NextLSN != 3 {
		t.Errorf("RecoveryInfo = %+v, want cursor 1, 1 replayed, next LSN 3", info)
	}
	// The log must have been checkpointed down to a bare cursor.
	if st, err := os.Stat(logPath); err != nil || st.Size() != int64(repl.CursorSize) {
		t.Fatalf("log not checkpointed after recovery: %v, %v", st, err)
	}
}

// TestIncompleteLogIgnored checks that a torn (incomplete) redo record is
// discarded rather than applied.
func TestIncompleteLogIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ostore.db")
	m, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	oid, err := m.Allocate(storage.SegMaterial, []byte("stable"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// A valid cursor, then a record cut off halfway through its page image.
	torn := repl.EncodeRecord(2, []repl.PageImage{{ID: 1, Data: bytes.Repeat([]byte{0xEE}, pagefile.PageSize)}})
	log := append(repl.EncodeCursor(1), torn[:len(torn)/2]...)
	if err := os.WriteFile(path+".log", log, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	got, err := m2.Read(oid)
	if err != nil || string(got) != "stable" {
		t.Fatalf("Read = %q, %v; want stable", got, err)
	}
}

// TestTornMiddleLogIgnored is the regression test for the torn-write
// false-apply (crashtest seed 115): a record whose head sector (count,
// first page id) and tail sector (commit magic) reached the disk while the
// middle was lost reads as complete to a magic-only check, but replaying it
// writes mostly-zero page images over good data. The CRC must reject it.
func TestTornMiddleLogIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ostore.db")
	m, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	oid, err := m.Allocate(storage.SegMaterial, []byte("stable"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// A well-formed record for page 0 (the superblock), then tear out the
	// middle: everything between the first and last 512-byte sectors becomes
	// zeros, exactly what a partially completed multi-sector write leaves.
	// The trailing magic lives in the final sector, so it survives the tear
	// and a magic-only check would wrongly accept the record.
	rec := repl.EncodeRecord(2, []repl.PageImage{{ID: 0, Data: bytes.Repeat([]byte{0xEE}, pagefile.PageSize)}})
	log := append(repl.EncodeCursor(1), rec...)
	tail := append([]byte(nil), log[len(log)-512:]...)
	for i := 512; i < len(log)-512; i++ {
		log[i] = 0
	}
	copy(log[len(log)-512:], tail)
	if err := os.WriteFile(path+".log", log, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("reopen with torn log: %v", err)
	}
	defer m2.Close()
	got, err := m2.Read(oid)
	if err != nil || string(got) != "stable" {
		t.Fatalf("Read = %q, %v; want stable (torn record must be discarded)", got, err)
	}
	if info, err := os.Stat(path + ".log"); err != nil || info.Size() != int64(repl.CursorSize) {
		t.Fatalf("torn log not checkpointed: %v, %v", info, err)
	}
}

// TestShortReadLogIgnored feeds recovery a log whose medium delivers fewer
// bytes than Size reports (a short read): only the delivered prefix may be
// validated, so the truncated record must be discarded, not mis-parsed.
func TestShortReadLogIgnored(t *testing.T) {
	backing := pagefile.NewMem()
	defer backing.Close()

	// A cursor plus a record that would be valid at full length.
	rec := append(repl.EncodeCursor(0),
		repl.EncodeRecord(1, []repl.PageImage{{ID: 0, Data: bytes.Repeat([]byte{0xEE}, pagefile.PageSize)}})...)

	log := &shortLog{data: rec, deliver: len(rec) / 2}
	if _, _, err := recoverLog(log, backing, false, nil); err != nil {
		t.Fatalf("recoverLog: %v", err)
	}
	// Nothing may have been replayed: the store still has only its original
	// (zero) pages and no grow happened.
	if n := backing.NumPages(); n != 0 {
		t.Fatalf("backing grew to %d pages from a short-read log", n)
	}
	if !log.truncated {
		t.Fatal("short-read log was not truncated")
	}

	// Control: the same record fully delivered must replay.
	backing2 := pagefile.NewMem()
	defer backing2.Close()
	full := &shortLog{data: rec, deliver: len(rec)}
	next, _, err := recoverLog(full, backing2, false, nil)
	if err != nil {
		t.Fatalf("recoverLog (full): %v", err)
	}
	if n := backing2.NumPages(); n != 1 {
		t.Fatalf("backing = %d pages after full replay, want 1", n)
	}
	if next != 2 {
		t.Fatalf("next LSN = %d after replaying record 1, want 2", next)
	}
}

// shortLog is a LogFile whose ReadAt delivers only the first deliver bytes,
// the shape recoverLog's n-handling exists for.
type shortLog struct {
	data      []byte
	deliver   int
	truncated bool
}

func (s *shortLog) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(s.deliver) {
		return 0, io.EOF
	}
	n := copy(p, s.data[off:s.deliver])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (s *shortLog) WriteAt(p []byte, off int64) (int, error) { return len(p), nil }
func (s *shortLog) Truncate(size int64) error                { s.truncated = true; return nil }
func (s *shortLog) Sync() error                              { return nil }
func (s *shortLog) Size() (int64, error)                     { return int64(len(s.data)), nil }
func (s *shortLog) Close() error                             { return nil }

// countingBacking wraps a Backing and counts Close calls.
type countingBacking struct {
	pagefile.Backing
	closes int
}

func (b *countingBacking) Close() error {
	b.closes++
	return b.Backing.Close()
}

// brokenLog fails every read, so recovery cannot proceed; Close calls are
// counted to catch descriptor leaks (and double closes) in Open's error path.
type brokenLog struct {
	closes int
}

func (l *brokenLog) ReadAt(p []byte, off int64) (int, error) {
	return 0, fmt.Errorf("injected log read failure")
}
func (l *brokenLog) WriteAt(p []byte, off int64) (int, error) { return len(p), nil }
func (l *brokenLog) Truncate(size int64) error                { return nil }
func (l *brokenLog) Sync() error                              { return nil }
func (l *brokenLog) Size() (int64, error)                     { return 16, nil }
func (l *brokenLog) Close() error                             { l.closes++; return nil }

// TestOpenRecoveryFailureClosesMedia: when recovery fails, Open must return
// the error and close both the backing and the log exactly once each —
// neither leaked nor double-closed.
func TestOpenRecoveryFailureClosesMedia(t *testing.T) {
	cb := &countingBacking{Backing: pagefile.NewMem()}
	bl := &brokenLog{}
	m, err := Open(Options{Backing: cb, Log: bl})
	if err == nil {
		m.Close()
		t.Fatal("Open with failing recovery: want error")
	}
	if cb.closes != 1 {
		t.Errorf("backing closed %d times, want exactly 1", cb.closes)
	}
	if bl.closes != 1 {
		t.Errorf("log closed %d times, want exactly 1", bl.closes)
	}
}

// TestBoundedPoolFaults: with a pool smaller than the working set, a scan
// larger than the pool must fault on re-scan; with a large pool it must not.
func TestBoundedPoolFaults(t *testing.T) {
	build := func(pool int) (storage.Manager, []storage.OID) {
		path := filepath.Join(t.TempDir(), "db")
		m, err := Open(Options{Path: path, PoolPages: pool})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		if err := m.Begin(); err != nil {
			t.Fatal(err)
		}
		var oids []storage.OID
		payload := make([]byte, 2000) // 4 records per page -> 100 pages
		for i := 0; i < 400; i++ {
			oid, err := m.Allocate(storage.SegHistory, payload)
			if err != nil {
				t.Fatal(err)
			}
			oids = append(oids, oid)
		}
		if err := m.Commit(); err != nil {
			t.Fatal(err)
		}
		return m, oids
	}

	scanTwice := func(m storage.Manager, oids []storage.OID) (first, second uint64) {
		base := m.Stats().Faults
		for _, oid := range oids {
			if _, err := m.Read(oid); err != nil {
				t.Fatal(err)
			}
		}
		mid := m.Stats().Faults
		for _, oid := range oids {
			if _, err := m.Read(oid); err != nil {
				t.Fatal(err)
			}
		}
		return mid - base, m.Stats().Faults - mid
	}

	mSmall, oidsSmall := build(32)
	_, secondSmall := scanTwice(mSmall, oidsSmall)
	if secondSmall == 0 {
		t.Error("small pool: second scan should fault (working set exceeds pool)")
	}

	mBig, oidsBig := build(4096)
	_, secondBig := scanTwice(mBig, oidsBig)
	if secondBig != 0 {
		t.Errorf("large pool: second scan faulted %d times, want 0", secondBig)
	}
}

// TestAbandonedProcessKeepsCommits simulates a process that dies without
// Close: every committed transaction must be readable on reopen (commit
// writes pages to the database file before returning).
func TestAbandonedProcessKeepsCommits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "abandoned.db")
	m, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	var oids []storage.OID
	for txn := 0; txn < 5; txn++ {
		if err := m.Begin(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			oid, err := m.Allocate(storage.SegHistory, []byte(fmt.Sprintf("txn%d-rec%d", txn, i)))
			if err != nil {
				t.Fatal(err)
			}
			oids = append(oids, oid)
		}
		if err := m.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the "process" is gone. (The open file handle is dropped.)
	m = nil

	m2, err := Open(Options{Path: path, LogPath: path + ".log2"})
	if err != nil {
		t.Fatalf("reopen after abandonment: %v", err)
	}
	defer m2.Close()
	for i, oid := range oids {
		want := fmt.Sprintf("txn%d-rec%d", i/20, i%20)
		got, err := m2.Read(oid)
		if err != nil || string(got) != want {
			t.Fatalf("record %d = %q, %v; want %q", i, got, err, want)
		}
	}
}

// TestCheckpointBoundsReplay abandons a store mid-stream (no Close) and
// checks that reopen replays only the records since the last checkpoint —
// the bounded-recovery contract — rather than the whole history.
func TestCheckpointBoundsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.db")
	m, err := Open(Options{Path: path, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	var oids []storage.OID
	for txn := 0; txn < 10; txn++ {
		if err := m.Begin(); err != nil {
			t.Fatal(err)
		}
		oid, err := m.Allocate(storage.SegHistory, []byte(fmt.Sprintf("txn%d", txn)))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
		if err := m.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon without Close. Store creation itself commits once (the
	// superblock), so 11 records were flushed; checkpoints landed at LSNs 4
	// and 8, leaving the cursor at 8 with records 9–11 in the log.
	m = nil

	var info repl.RecoveryInfo
	m2, err := Open(Options{Path: path, CheckpointEvery: 4, Recovery: &info})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	if info.CheckpointLSN != 8 || info.Replayed != 3 || info.NextLSN != 12 {
		t.Errorf("RecoveryInfo = %+v, want cursor 8, 3 replayed, next LSN 12", info)
	}
	for i, oid := range oids {
		got, err := m2.Read(oid)
		if err != nil || string(got) != fmt.Sprintf("txn%d", i) {
			t.Fatalf("txn %d = %q, %v", i, got, err)
		}
	}
}

// TestShipperFeedsStandby pairs a primary with an in-process standby and
// checks every commit's record arrives before the commit returns, and that
// the promoted standby's media open as an equivalent store.
func TestShipperFeedsStandby(t *testing.T) {
	dir := t.TempDir()
	standbyPath := filepath.Join(dir, "follower.db")
	st, err := repl.OpenFileStandby(standbyPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Open(Options{Path: filepath.Join(dir, "primary.db"), Shipper: st})
	if err != nil {
		t.Fatal(err)
	}
	var oids []storage.OID
	for txn := 0; txn < 6; txn++ {
		if err := m.Begin(); err != nil {
			t.Fatal(err)
		}
		oid, err := m.Allocate(storage.SegMaterial, []byte(fmt.Sprintf("ship%d", txn)))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
		if err := m.Commit(); err != nil {
			t.Fatal(err)
		}
		// Store creation committed once before the first transaction, so the
		// standby runs one LSN ahead of the transaction count.
		if got := st.LastLSN(); got != uint64(txn+2) {
			t.Fatalf("standby LSN = %d after commit %d, want %d", got, txn, txn+2)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Promote and open a real store over the standby's media.
	if err := st.Promote(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(Options{Path: standbyPath})
	if err != nil {
		t.Fatalf("open promoted standby: %v", err)
	}
	defer f.Close()
	for i, oid := range oids {
		got, err := f.Read(oid)
		if err != nil || string(got) != fmt.Sprintf("ship%d", i) {
			t.Fatalf("promoted read %d = %q, %v", i, got, err)
		}
	}
}

// flakyShipper wraps an in-process standby and fails exactly one armed
// Ship, in either of the two transport-failure shapes: "ackLost" delivers
// the record before erroring (the standby applied it; only the ack died)
// and "dropped" errors without delivering. FollowerLSN is promoted from the
// embedded standby, so the primary can resolve the ambiguity the same way
// the wire shipper does.
type flakyShipper struct {
	*repl.Standby
	mu   sync.Mutex
	arm  string // "", "ackLost", "dropped"
	errs int
}

func (f *flakyShipper) Arm(mode string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.arm = mode
}

func (f *flakyShipper) Ship(lsn uint64, record []byte) error {
	f.mu.Lock()
	mode := f.arm
	f.arm = ""
	if mode != "" {
		f.errs++
	}
	f.mu.Unlock()
	switch mode {
	case "ackLost":
		if err := f.Standby.Ship(lsn, record); err != nil {
			return err
		}
		return errors.New("flaky: ack lost")
	case "dropped":
		return errors.New("flaky: record dropped")
	}
	return f.Standby.Ship(lsn, record)
}

// TestShipFailureRecovery is the wedge regression: a commit whose record
// fails to ship must fail, but the NEXT commit must succeed — the burned
// LSN's bytes are redelivered (or recognized as already applied) ahead of
// the new record, never re-encoded under a reused LSN. Both failure shapes
// are exercised.
func TestShipFailureRecovery(t *testing.T) {
	for _, mode := range []string{"ackLost", "dropped"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			standbyPath := filepath.Join(dir, "follower.db")
			st, err := repl.OpenFileStandby(standbyPath, 100)
			if err != nil {
				t.Fatal(err)
			}
			fs := &flakyShipper{Standby: st}
			m, err := Open(Options{Path: filepath.Join(dir, "primary.db"), Shipper: fs})
			if err != nil {
				t.Fatal(err)
			}
			oids := map[string]storage.OID{}
			commit := func(payload string) error {
				if err := m.Begin(); err != nil {
					t.Fatal(err)
				}
				oid, err := m.Allocate(storage.SegMaterial, []byte(payload))
				if err != nil {
					t.Fatal(err)
				}
				oids[payload] = oid
				return m.Commit()
			}
			if err := commit("a"); err != nil {
				t.Fatalf("commit a: %v", err)
			}
			// Creation is LSN 1, commit a is LSN 2.
			if got := st.LastLSN(); got != 2 {
				t.Fatalf("standby LSN = %d, want 2", got)
			}

			fs.Arm(mode)
			if err := commit("b"); err == nil {
				t.Fatal("commit b succeeded despite ship failure")
			}
			// The follower may or may not hold record 3 now — that is the
			// ambiguity — but the primary must not be wedged.
			if err := commit("c"); err != nil {
				t.Fatalf("commit c after ship failure: %v (stream wedged)", err)
			}
			if got := st.LastLSN(); got != 4 {
				t.Fatalf("standby LSN after recovery = %d, want 4 (burned LSN 3 resolved, c is 4)", got)
			}
			if err := commit("d"); err != nil {
				t.Fatalf("commit d: %v", err)
			}
			if got := st.LastLSN(); got != 5 {
				t.Fatalf("standby LSN = %d, want 5", got)
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}

			// The promoted follower serves every successfully committed
			// payload; the failed commit's pages rode along in the redelivered
			// superset record, so its state is a superset of what clients saw.
			if err := st.Promote(); err != nil {
				t.Fatal(err)
			}
			f, err := Open(Options{Path: standbyPath})
			if err != nil {
				t.Fatalf("open promoted standby: %v", err)
			}
			defer f.Close()
			for _, want := range []string{"a", "c", "d"} {
				got, err := f.Read(oids[want])
				if err != nil || string(got) != want {
					t.Fatalf("promoted read %q = %q, %v", want, got, err)
				}
			}
		})
	}
}

func indexOf(hay, needle []byte) int {
	for i := 0; i+len(needle) <= len(hay); i++ {
		if string(hay[i:i+len(needle)]) == string(needle) {
			return i
		}
	}
	return -1
}
