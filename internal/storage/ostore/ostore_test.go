package ostore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"labflow/internal/storage"
	"labflow/internal/storage/pagefile"
	"labflow/internal/storage/storagetest"
)

func openTemp(t *testing.T, opts Options) storage.Manager {
	t.Helper()
	if opts.Path == "" {
		opts.Path = filepath.Join(t.TempDir(), "ostore.db")
	}
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestConformanceFile(t *testing.T) {
	storagetest.Conformance(t, func(t *testing.T) storage.Manager {
		return openTemp(t, Options{})
	})
}

func TestConformanceSmallPool(t *testing.T) {
	storagetest.Conformance(t, func(t *testing.T) storage.Manager {
		return openTemp(t, Options{PoolPages: 20})
	})
}

func TestConformanceMemBacking(t *testing.T) {
	storagetest.Conformance(t, func(t *testing.T) storage.Manager {
		m, err := Open(Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		return m
	})
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ostore.db")
	m, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	var oids []storage.OID
	for i := 0; i < 300; i++ {
		oid, err := m.Allocate(storage.SegMaterial, []byte(fmt.Sprintf("m-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	if err := m.SetRoot(oids[42]); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	for i, oid := range oids {
		got, err := m2.Read(oid)
		if err != nil || string(got) != fmt.Sprintf("m-%d", i) {
			t.Fatalf("Read %v = %q, %v", oid, got, err)
		}
	}
	if root, _ := m2.Root(); root != oids[42] {
		t.Fatalf("Root = %v, want %v", root, oids[42])
	}
}

// TestRecovery simulates a crash after the redo log is written but before
// the database pages are updated: the data must reappear on reopen.
func TestRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ostore.db")
	logPath := path + ".log"

	// Build a committed baseline database.
	m, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	oid, err := m.Allocate(storage.SegMaterial, []byte("before crash"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetRoot(oid); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Forge a complete redo record that rewrites the object's page with a
	// recognisable image, simulating a crash between log force and page
	// write-back. We find the page by scanning the db file for the record.
	db, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pageOf := -1
	for p := 0; p*pagefile.PageSize < len(db); p++ {
		page := db[p*pagefile.PageSize : (p+1)*pagefile.PageSize]
		if idx := indexOf(page, []byte("before crash")); idx >= 0 {
			pageOf = p
			break
		}
	}
	if pageOf < 0 {
		t.Fatal("did not find record page in database file")
	}
	img := make([]byte, pagefile.PageSize)
	copy(img, db[pageOf*pagefile.PageSize:(pageOf+1)*pagefile.PageSize])
	copy(img[indexOf(img, []byte("before crash")):], []byte("after replay"))

	var log []byte
	log = binary.LittleEndian.AppendUint32(log, 1)
	log = binary.LittleEndian.AppendUint32(log, uint32(pageOf))
	log = append(log, img...)
	log = binary.LittleEndian.AppendUint64(log, commitMagic)
	if err := os.WriteFile(logPath, log, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("reopen with log: %v", err)
	}
	defer m2.Close()
	got, err := m2.Read(oid)
	if err != nil || string(got) != "after replay" {
		t.Fatalf("after recovery Read = %q, %v; want %q", got, err, "after replay")
	}
	// The log must have been truncated.
	if info, err := os.Stat(logPath); err != nil || info.Size() != 0 {
		t.Fatalf("log not truncated after recovery: %v, %v", info, err)
	}
}

// TestIncompleteLogIgnored checks that a torn (incomplete) redo record is
// discarded rather than applied.
func TestIncompleteLogIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ostore.db")
	m, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	oid, err := m.Allocate(storage.SegMaterial, []byte("stable"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// A record claiming one page but cut off before the commit marker.
	var log []byte
	log = binary.LittleEndian.AppendUint32(log, 1)
	log = binary.LittleEndian.AppendUint32(log, 1)
	log = append(log, make([]byte, pagefile.PageSize/2)...) // torn
	if err := os.WriteFile(path+".log", log, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	got, err := m2.Read(oid)
	if err != nil || string(got) != "stable" {
		t.Fatalf("Read = %q, %v; want stable", got, err)
	}
}

// TestBoundedPoolFaults: with a pool smaller than the working set, a scan
// larger than the pool must fault on re-scan; with a large pool it must not.
func TestBoundedPoolFaults(t *testing.T) {
	build := func(pool int) (storage.Manager, []storage.OID) {
		path := filepath.Join(t.TempDir(), "db")
		m, err := Open(Options{Path: path, PoolPages: pool})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		if err := m.Begin(); err != nil {
			t.Fatal(err)
		}
		var oids []storage.OID
		payload := make([]byte, 2000) // 4 records per page -> 100 pages
		for i := 0; i < 400; i++ {
			oid, err := m.Allocate(storage.SegHistory, payload)
			if err != nil {
				t.Fatal(err)
			}
			oids = append(oids, oid)
		}
		if err := m.Commit(); err != nil {
			t.Fatal(err)
		}
		return m, oids
	}

	scanTwice := func(m storage.Manager, oids []storage.OID) (first, second uint64) {
		base := m.Stats().Faults
		for _, oid := range oids {
			if _, err := m.Read(oid); err != nil {
				t.Fatal(err)
			}
		}
		mid := m.Stats().Faults
		for _, oid := range oids {
			if _, err := m.Read(oid); err != nil {
				t.Fatal(err)
			}
		}
		return mid - base, m.Stats().Faults - mid
	}

	mSmall, oidsSmall := build(32)
	_, secondSmall := scanTwice(mSmall, oidsSmall)
	if secondSmall == 0 {
		t.Error("small pool: second scan should fault (working set exceeds pool)")
	}

	mBig, oidsBig := build(4096)
	_, secondBig := scanTwice(mBig, oidsBig)
	if secondBig != 0 {
		t.Errorf("large pool: second scan faulted %d times, want 0", secondBig)
	}
}

// TestAbandonedProcessKeepsCommits simulates a process that dies without
// Close: every committed transaction must be readable on reopen (commit
// writes pages to the database file before returning).
func TestAbandonedProcessKeepsCommits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "abandoned.db")
	m, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	var oids []storage.OID
	for txn := 0; txn < 5; txn++ {
		if err := m.Begin(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			oid, err := m.Allocate(storage.SegHistory, []byte(fmt.Sprintf("txn%d-rec%d", txn, i)))
			if err != nil {
				t.Fatal(err)
			}
			oids = append(oids, oid)
		}
		if err := m.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the "process" is gone. (The open file handle is dropped.)
	m = nil

	m2, err := Open(Options{Path: path, LogPath: path + ".log2"})
	if err != nil {
		t.Fatalf("reopen after abandonment: %v", err)
	}
	defer m2.Close()
	for i, oid := range oids {
		want := fmt.Sprintf("txn%d-rec%d", i/20, i%20)
		got, err := m2.Read(oid)
		if err != nil || string(got) != want {
			t.Fatalf("record %d = %q, %v; want %q", i, got, err, want)
		}
	}
}

func indexOf(hay, needle []byte) int {
	for i := 0; i+len(needle) <= len(hay); i++ {
		if string(hay[i:i+len(needle)]) == string(needle) {
			return i
		}
	}
	return -1
}
