package ostore

import (
	"errors"
	"io/fs"
	"path/filepath"
	"testing"

	"labflow/internal/storage"
)

// TestSentinelUnwrapping pins the error-chain contract enforced by the
// errwrap analyzer: every layer of the manager wraps with %w, so callers can
// match the shared storage sentinels with errors.Is no matter how many
// "ostore:" / "pagefile:" prefixes were added on the way up.
func TestSentinelUnwrapping(t *testing.T) {
	m := openTemp(t, Options{})

	if _, err := m.Read(storage.MakeOID(storage.SegHistory, 12345)); !errors.Is(err, storage.ErrNoSuchObject) {
		t.Errorf("Read(bogus) = %v; want chain containing storage.ErrNoSuchObject", err)
	}

	oid := storage.MakeOID(storage.SegMaterial, 77)
	if err := m.Write(oid, []byte("x")); !errors.Is(err, storage.ErrNoTransaction) {
		t.Errorf("Write outside txn = %v; want chain containing storage.ErrNoTransaction", err)
	}

	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := m.Read(storage.MakeOID(storage.SegMaterial, 1)); !errors.Is(err, storage.ErrClosed) {
		t.Errorf("Read after Close = %v; want chain containing storage.ErrClosed", err)
	}
}

// TestOpenErrorExposesPathError checks errors.As through the Open path: a
// backing file that cannot be created surfaces the underlying *fs.PathError
// (with the failing path) through the "ostore:" wrapping.
func TestOpenErrorExposesPathError(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing-dir", "store.db")
	_, err := Open(Options{Path: bad})
	if err == nil {
		t.Fatal("Open with an uncreatable path succeeded")
	}
	var pathErr *fs.PathError
	if !errors.As(err, &pathErr) {
		t.Fatalf("Open error %v; want chain containing *fs.PathError", err)
	}
	// The store touches the redo log (Path+".log") first, so either file
	// may be the one named in the failure.
	if pathErr.Path != bad && pathErr.Path != bad+".log" {
		t.Errorf("PathError.Path = %q, want %q or %q", pathErr.Path, bad, bad+".log")
	}
}
