package ostore

import (
	"bytes"
	"path/filepath"
	"testing"

	"labflow/internal/storage"
	"labflow/internal/storage/pagefile"
)

// TestNoStealAndTrim verifies the pool policy: during a transaction dirty
// pages may push the pool past capacity (no-steal), and commit trims it back.
func TestNoStealAndTrim(t *testing.T) {
	m, err := Open(Options{Path: filepath.Join(t.TempDir(), "db"), PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	// Dirty far more pages than the pool holds inside one transaction.
	payload := bytes.Repeat([]byte("x"), 4000) // 2 records per page
	for i := 0; i < 200; i++ {
		if _, err := m.Allocate(storage.SegHistory, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	// All dirty pages were written exactly once at commit.
	if st.PageWrites < 100 {
		t.Errorf("PageWrites = %d, want >= 100 (about one per data page)", st.PageWrites)
	}
	// Fresh pages never fault; at most the clean superblock page can be
	// evicted mid-transaction and faulted back at commit.
	if st.Faults > 2 {
		t.Errorf("Faults during build = %d, want <= 2 (all data pages were fresh)", st.Faults)
	}
}

// TestLockTableLifecycle checks strict 2PL bookkeeping: locks accumulate
// during a transaction and are all released at commit.
func TestLockTableLifecycle(t *testing.T) {
	mgr, err := Open(Options{Path: filepath.Join(t.TempDir(), "db")})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	// Reach inside: the manager is a *pagefile.Store over our pager; we
	// re-open the internals through the exported API only, so instead we
	// check observable behaviour: reads outside transactions do not retain
	// locks that would block later writes.
	if err := mgr.Begin(); err != nil {
		t.Fatal(err)
	}
	oid, err := mgr.Allocate(storage.SegMaterial, []byte("locked"))
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := mgr.Read(oid); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Write(oid, []byte("relocked")); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := mgr.Read(oid)
	if err != nil || string(got) != "relocked" {
		t.Fatalf("Read = %q, %v", got, err)
	}
}

// TestSyncLogOption exercises the fsync-at-commit path.
func TestSyncLogOption(t *testing.T) {
	m, err := Open(Options{Path: filepath.Join(t.TempDir(), "db"), SyncLog: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate(storage.SegCatalog, []byte("synced")); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatalf("commit with SyncLog: %v", err)
	}
}

// TestEvictionAccounting fills the pool with clean pages and confirms CLOCK
// evictions happen (and are counted) once capacity is exceeded.
func TestEvictionAccounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	m, err := Open(Options{Path: path, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("e"), 4000)
	var oids []storage.OID
	for i := 0; i < 100; i++ {
		oid, err := m.Allocate(storage.SegHistory, payload)
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(Options{Path: path, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	// Scan everything twice: with 50+ data pages and a 16-page pool the
	// second pass must fault again (pages were evicted in between).
	for pass := 0; pass < 2; pass++ {
		for _, oid := range oids {
			if _, err := m2.Read(oid); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := m2.Stats()
	if st.Faults < 60 {
		t.Errorf("Faults = %d, want >= 60 across two passes with a tiny pool", st.Faults)
	}
}

// TestPagefileStoreSlackless confirms ostore reserves no allocation slack:
// identical records consume about their own size (plus slot overhead).
func TestPagefileStoreSlackless(t *testing.T) {
	m, err := Open(Options{Path: filepath.Join(t.TempDir(), "db")})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	// 530-byte records: exact-fit packing admits 15 per page
	// (15 * (530+6) = 8040 <= 8184); a power-of-two heap would round each
	// to 1024 and fit only 7.
	payload := make([]byte, 530)
	for i := 0; i < 150; i++ {
		if _, err := m.Allocate(storage.SegHistory, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	// 150 records at exact fit: about 10 data pages (+ tables and
	// superblock). Allow generous overhead but rule out heap rounding.
	maxPages := uint64(18)
	if st.SizeBytes > maxPages*pagefile.PageSize {
		t.Errorf("size = %d bytes (> %d pages); exact-fit packing expected", st.SizeBytes, maxPages)
	}
}
