package ostore

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"labflow/internal/storage"
	"labflow/internal/storage/pagefile"
	"labflow/internal/storage/repl"
)

// TestNoStealAndTrim verifies the pool policy: during a transaction dirty
// pages may push the pool past capacity (no-steal), and commit trims it back.
func TestNoStealAndTrim(t *testing.T) {
	m, err := Open(Options{Path: filepath.Join(t.TempDir(), "db"), PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	// Dirty far more pages than the pool holds inside one transaction.
	payload := bytes.Repeat([]byte("x"), 4000) // 2 records per page
	for i := 0; i < 200; i++ {
		if _, err := m.Allocate(storage.SegHistory, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	// All dirty pages were written exactly once at commit.
	if st.PageWrites < 100 {
		t.Errorf("PageWrites = %d, want >= 100 (about one per data page)", st.PageWrites)
	}
	// Fresh pages never fault; at most the clean superblock page can be
	// evicted mid-transaction and faulted back at commit.
	if st.Faults > 2 {
		t.Errorf("Faults during build = %d, want <= 2 (all data pages were fresh)", st.Faults)
	}
}

// TestLockTableLifecycle checks strict 2PL bookkeeping: locks accumulate
// during a transaction and are all released at commit.
func TestLockTableLifecycle(t *testing.T) {
	mgr, err := Open(Options{Path: filepath.Join(t.TempDir(), "db")})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	// Reach inside: the manager is a *pagefile.Store over our pager; we
	// re-open the internals through the exported API only, so instead we
	// check observable behaviour: reads outside transactions do not retain
	// locks that would block later writes.
	if err := mgr.Begin(); err != nil {
		t.Fatal(err)
	}
	oid, err := mgr.Allocate(storage.SegMaterial, []byte("locked"))
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := mgr.Read(oid); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Write(oid, []byte("relocked")); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := mgr.Read(oid)
	if err != nil || string(got) != "relocked" {
		t.Fatalf("Read = %q, %v", got, err)
	}
}

// TestSyncLogOption exercises the fsync-at-commit path.
func TestSyncLogOption(t *testing.T) {
	m, err := Open(Options{Path: filepath.Join(t.TempDir(), "db"), SyncLog: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate(storage.SegCatalog, []byte("synced")); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatalf("commit with SyncLog: %v", err)
	}
}

// TestEvictionAccounting fills the pool with clean pages and confirms CLOCK
// evictions happen (and are counted) once capacity is exceeded.
func TestEvictionAccounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	m, err := Open(Options{Path: path, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("e"), 4000)
	var oids []storage.OID
	for i := 0; i < 100; i++ {
		oid, err := m.Allocate(storage.SegHistory, payload)
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(Options{Path: path, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	// Scan everything twice: with 50+ data pages and a 16-page pool the
	// second pass must fault again (pages were evicted in between).
	for pass := 0; pass < 2; pass++ {
		for _, oid := range oids {
			if _, err := m2.Read(oid); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := m2.Stats()
	if st.Faults < 60 {
		t.Errorf("Faults = %d, want >= 60 across two passes with a tiny pool", st.Faults)
	}
}

// TestPagefileStoreSlackless confirms ostore reserves no allocation slack:
// identical records consume about their own size (plus slot overhead).
func TestPagefileStoreSlackless(t *testing.T) {
	m, err := Open(Options{Path: filepath.Join(t.TempDir(), "db")})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	// 530-byte records: exact-fit packing admits 15 per page
	// (15 * (530+6) = 8040 <= 8184); a power-of-two heap would round each
	// to 1024 and fit only 7.
	payload := make([]byte, 530)
	for i := 0; i < 150; i++ {
		if _, err := m.Allocate(storage.SegHistory, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	// 150 records at exact fit: about 10 data pages (+ tables and
	// superblock). Allow generous overhead but rule out heap rounding.
	maxPages := uint64(18)
	if st.SizeBytes > maxPages*pagefile.PageSize {
		t.Errorf("size = %d bytes (> %d pages); exact-fit packing expected", st.SizeBytes, maxPages)
	}
}

// newWhiteboxPager builds a bare pager (mem backing, optional log file) with
// its server and flusher goroutines running, bypassing the object layer so
// tests can drive the group-commit protocol directly.
func newWhiteboxPager(t *testing.T, logPath string) *pager {
	t.Helper()
	var log LogFile
	if logPath != "" {
		f, err := os.OpenFile(logPath, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		log = osLog{f}
	}
	p := &pager{
		backing:   pagefile.NewMem(),
		log:       log,
		nextLSN:   1,
		logEnd:    repl.CursorSize,
		ckptEvery: 1, // checkpoint every flush: the historical retire-per-commit shape
		pool:      make(map[pagefile.PageID]*frame),
		capacity:  64,
		locks:     make(map[pagefile.PageID]pagefile.Mode),
		faultReq:  make(chan faultRequest),
		commitReq: make(chan *commitBatch, commitQueueDepth),
		done:      make(chan struct{}),
		flushDone: make(chan struct{}),
	}
	go p.serve()
	go p.flushLoop()
	t.Cleanup(func() { p.Close() })
	return p
}

// TestGroupCommitCoalesce drives flushBatches directly with overlapping
// batches and checks the coalescing rules: one write-back per unique page,
// later batches superseding earlier images, log retired afterwards.
func TestGroupCommitCoalesce(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "wal")
	p := newWhiteboxPager(t, logPath)

	mkFrame := func(fill byte) *frame {
		f, err := p.AllocPage()
		if err != nil {
			t.Fatal(err)
		}
		for i := range f.Data {
			f.Data[i] = fill
		}
		p.Unpin(f, true)
		return f.Priv.(*frame)
	}
	fa, fb, fc := mkFrame(0xAA), mkFrame(0xBB), mkFrame(0xCC)

	// Batch 2 re-dirties fa's page with a newer image (same frame in this
	// pager, so the latest bytes win by construction; the dedupe keeps the
	// page from being logged or written twice).
	for i := range fa.pf.Data {
		fa.pf.Data[i] = 0xAD
	}
	b1 := &commitBatch{frames: []*frame{fa, fb}, done: make(chan error, 1)}
	b2 := &commitBatch{frames: []*frame{fa, fc}, done: make(chan error, 1)}
	before := p.Stats().PageWrites
	if err := p.flushBatches([]*commitBatch{b1, b2}); err != nil {
		t.Fatalf("flushBatches: %v", err)
	}
	if got := p.Stats().PageWrites - before; got != 3 {
		t.Errorf("PageWrites = %d, want 3 (one per unique page)", got)
	}
	buf := make([]byte, pagefile.PageSize)
	for _, want := range []struct {
		fr   *frame
		fill byte
	}{{fa, 0xAD}, {fb, 0xBB}, {fc, 0xCC}} {
		if err := p.backing.ReadPage(want.fr.pf.ID, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != want.fill || buf[pagefile.PageSize-1] != want.fill {
			t.Errorf("page %d = %#x..%#x, want fill %#x",
				want.fr.pf.ID, buf[0], buf[pagefile.PageSize-1], want.fill)
		}
	}
	if info, err := os.Stat(logPath); err != nil || info.Size() != int64(repl.CursorSize) {
		t.Errorf("log not checkpointed down to its cursor after flush: %v, %v", info, err)
	}
}

// TestGroupCommitConcurrent overlaps many committers on one flusher. Frames
// are built serially (the object layer serializes transaction bodies in real
// use — a frame's owner writes it under pin before anyone may log it), then
// disjoint batches are enqueued concurrently so batch formation, coalescing
// and the shared durability point all run under the race detector.
func TestGroupCommitConcurrent(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "wal")
	p := newWhiteboxPager(t, logPath)

	const workers = 8
	const perWorker = 25
	frames := make([][]*frame, workers)
	for w := 0; w < workers; w++ {
		for r := 0; r < perWorker; r++ {
			f, err := p.AllocPage()
			if err != nil {
				t.Fatal(err)
			}
			for i := range f.Data {
				f.Data[i] = byte(w)
			}
			p.Unpin(f, true)
			frames[w] = append(frames[w], f.Priv.(*frame))
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Several small batches per worker, racing the other workers
			// into the flusher's drain loop.
			for lo := 0; lo < perWorker; lo += 5 {
				b := &commitBatch{frames: frames[w][lo : lo+5], done: make(chan error, 1)}
				select {
				case p.commitReq <- b:
				case <-p.done:
					t.Error("pager closed mid-test")
					return
				}
				if err := <-b.done; err != nil {
					t.Errorf("worker %d batch: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Every batch must be durable in the backing store with the image its
	// owner wrote, exactly one write-back per page.
	if got := p.Stats().PageWrites; got != workers*perWorker {
		t.Errorf("PageWrites = %d, want %d", got, workers*perWorker)
	}
	buf := make([]byte, pagefile.PageSize)
	for w, fs := range frames {
		for _, fr := range fs {
			if err := p.backing.ReadPage(fr.pf.ID, buf); err != nil {
				t.Fatalf("read page %d: %v", fr.pf.ID, err)
			}
			if buf[0] != byte(w) || buf[pagefile.PageSize-1] != byte(w) {
				t.Fatalf("page %d: got fill %#x..%#x, want %#x",
					fr.pf.ID, buf[0], buf[pagefile.PageSize-1], byte(w))
			}
		}
	}
	if info, err := os.Stat(logPath); err != nil || info.Size() != int64(repl.CursorSize) {
		t.Errorf("log not checkpointed down to its cursor after final commit: %v, %v", info, err)
	}
}

// slowWAL delays every log write, widening the window in which Close can
// land while flushBatches is mid-flush.
type slowWAL struct {
	LogFile
}

func (l slowWAL) WriteAt(p []byte, off int64) (int, error) {
	time.Sleep(time.Millisecond)
	return l.LogFile.WriteAt(p, off)
}

// TestCloseDrainsInFlightFlush races Close against committers whose flushes
// are artificially slow. Close must wait for the in-flight group flush to
// drain before tearing down the log and backing — under the race detector
// this catches any overlap between flushBatches and teardown — and late
// committers get ErrPagerClosed, never a write into closed media.
func TestCloseDrainsInFlightFlush(t *testing.T) {
	f, err := os.OpenFile(filepath.Join(t.TempDir(), "wal"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	p := &pager{
		backing:   pagefile.NewMem(),
		log:       slowWAL{osLog{f}},
		nextLSN:   1,
		logEnd:    repl.CursorSize,
		ckptEvery: 1,
		pool:      make(map[pagefile.PageID]*frame),
		capacity:  64,
		locks:     make(map[pagefile.PageID]pagefile.Mode),
		faultReq:  make(chan faultRequest),
		commitReq: make(chan *commitBatch, commitQueueDepth),
		done:      make(chan struct{}),
		flushDone: make(chan struct{}),
	}
	go p.serve()
	go p.flushLoop()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				fr, err := p.AllocPage()
				if err != nil {
					return // pager closed under us: the expected exit
				}
				for i := range fr.Data {
					fr.Data[i] = byte(w)
				}
				p.Unpin(fr, true)
				if err := p.Commit(); err != nil {
					return
				}
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond) // let flushes overlap the close
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
