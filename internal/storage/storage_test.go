package storage

import (
	"testing"
	"testing/quick"
)

func TestOIDEncoding(t *testing.T) {
	oid := MakeOID(SegHistory, 12345)
	if oid.Segment() != SegHistory {
		t.Errorf("Segment = %v, want history", oid.Segment())
	}
	if oid.Index() != 12345 {
		t.Errorf("Index = %d, want 12345", oid.Index())
	}
	if oid.IsNil() {
		t.Error("non-zero OID reported nil")
	}
	if !NilOID.IsNil() {
		t.Error("NilOID not nil")
	}
	if NilOID.String() != "oid(nil)" {
		t.Errorf("NilOID.String = %q", NilOID.String())
	}
	if got := MakeOID(SegCatalog, 7).String(); got != "oid(catalog:7)" {
		t.Errorf("String = %q", got)
	}
}

func TestOIDQuick(t *testing.T) {
	f := func(seg uint8, idx uint64) bool {
		s := SegmentID(seg % uint8(NumSegments))
		i := idx & ((1 << 56) - 1)
		oid := MakeOID(s, i)
		return oid.Segment() == s && oid.Index() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentString(t *testing.T) {
	names := map[SegmentID]string{
		SegCatalog:   "catalog",
		SegMaterial:  "material",
		SegIndex:     "index",
		SegHistory:   "history",
		SegmentID(9): "segment(9)",
	}
	for seg, want := range names {
		if got := seg.String(); got != want {
			t.Errorf("SegmentID(%d).String() = %q, want %q", seg, got, want)
		}
	}
}

func TestStatsSub(t *testing.T) {
	cur := Stats{Faults: 100, PageWrites: 50, Reads: 10, Writes: 5, Allocs: 3, LockWaits: 2, SizeBytes: 999, LiveObjects: 7, LiveBytes: 70}
	prev := Stats{Faults: 40, PageWrites: 20, Reads: 4, Writes: 2, Allocs: 1, LockWaits: 1, SizeBytes: 500, LiveObjects: 3, LiveBytes: 30}
	d := cur.Sub(prev)
	if d.Faults != 60 || d.PageWrites != 30 || d.Reads != 6 || d.Writes != 3 || d.Allocs != 2 || d.LockWaits != 1 {
		t.Errorf("Sub counters wrong: %+v", d)
	}
	// Gauges keep the current value.
	if d.SizeBytes != 999 || d.LiveObjects != 7 || d.LiveBytes != 70 {
		t.Errorf("Sub gauges wrong: %+v", d)
	}
}
