package labbase

import (
	"fmt"
	"sort"

	"labflow/internal/storage"
)

// HistoryEntry is one event in a material's audit trail.
type HistoryEntry struct {
	Step      storage.OID
	ValidTime int64
}

// History returns the material's event history in insertion (transaction
// time) order, oldest first. Valid-time order may differ when steps were
// recorded out of order; see MostRecent.
func (db *DB) History(oid storage.OID) ([]HistoryEntry, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.historyLocked(oid)
}

func (db *DB) historyLocked(oid storage.OID) ([]HistoryEntry, error) {
	m, err := db.readMaterial(oid)
	if err != nil {
		return nil, err
	}
	var chunks [][]byte
	for c := m.historyHead; !c.IsNil(); {
		data, err := db.sm.Read(c)
		if err != nil {
			return nil, fmt.Errorf("labbase: read history chunk: %w", err)
		}
		if err := checkHistoryChunk(data); err != nil {
			return nil, err
		}
		chunks = append(chunks, data)
		c = historyChunkNext(data)
	}
	out := make([]HistoryEntry, 0, int(m.historyCount))
	for i := len(chunks) - 1; i >= 0; i-- {
		data := chunks[i]
		n := historyChunkCount(data)
		for j := 0; j < n; j++ {
			e := historyChunkEntry(data, j)
			out = append(out, HistoryEntry{Step: e.step, ValidTime: e.validTime})
		}
	}
	return out, nil
}

// MostRecent answers the benchmark's signature query: the value of attr on
// the most recent (by valid time) step that assigned it to the material.
// It uses the most-recent index — O(1) in history length — and returns the
// value, the step that produced it, and whether any step assigned the
// attribute at all.
func (db *DB) MostRecent(oid storage.OID, attr string) (Value, storage.OID, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id, ok := db.cat.byAttrName[attr]
	if !ok {
		return Nil(), storage.NilOID, false, fmt.Errorf("%w: %q", ErrUnknownAttr, attr)
	}
	m, err := db.readMaterial(oid)
	if err != nil {
		return Nil(), storage.NilOID, false, err
	}
	if m.mrIndex.IsNil() {
		return Nil(), storage.NilOID, false, nil
	}
	// Single-flight fill: concurrent readers missing on the same index
	// share one storage read instead of stampeding the manager.
	data, err := db.mrCache.getOrFill(m.mrIndex, func() ([]byte, error) {
		data, err := db.sm.Read(m.mrIndex)
		if err != nil {
			return nil, fmt.Errorf("labbase: read most-recent index: %w", err)
		}
		if err := checkMRIndex(data); err != nil {
			return nil, err
		}
		return data, nil
	})
	if err != nil {
		return Nil(), storage.NilOID, false, err
	}
	i := mrFind(data, id)
	if i < 0 {
		return Nil(), storage.NilOID, false, nil
	}
	e := mrGet(data, i)
	step, err := db.readStep(e.step)
	if err != nil {
		return Nil(), storage.NilOID, false, fmt.Errorf("labbase: most-recent step: %w", err)
	}
	v, ok := step.attrValue(id)
	if !ok {
		return Nil(), storage.NilOID, false, fmt.Errorf("labbase: most-recent index names step %v without attribute %q", e.step, attr)
	}
	return v, e.step, true, nil
}

// MostRecentScan answers the same query by scanning the full history — the
// correctness oracle for the index, and the cost the index saves. Among
// steps with equal valid time, the latest-inserted wins, matching the
// index's tie-break.
func (db *DB) MostRecentScan(oid storage.OID, attr string) (Value, storage.OID, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id, ok := db.cat.byAttrName[attr]
	if !ok {
		return Nil(), storage.NilOID, false, fmt.Errorf("%w: %q", ErrUnknownAttr, attr)
	}
	hist, err := db.historyLocked(oid)
	if err != nil {
		return Nil(), storage.NilOID, false, err
	}
	// Stable sort by valid time keeps insertion order among ties; walking
	// from the back then prefers the latest-inserted of the newest steps.
	sort.SliceStable(hist, func(i, j int) bool { return hist[i].ValidTime < hist[j].ValidTime })
	for i := len(hist) - 1; i >= 0; i-- {
		step, err := db.readStep(hist[i].Step)
		if err != nil {
			return Nil(), storage.NilOID, false, err
		}
		if v, ok := step.attrValue(id); ok {
			return v, hist[i].Step, true, nil
		}
	}
	return Nil(), storage.NilOID, false, nil
}

// MostRecentAsOf answers the historical form of the signature query: the
// value attr had *as of* valid time t — from the most recent step with
// ValidTime <= t that assigned it. Ties in valid time resolve to the
// latest-inserted step, consistent with MostRecent.
func (db *DB) MostRecentAsOf(oid storage.OID, attr string, t int64) (Value, storage.OID, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id, ok := db.cat.byAttrName[attr]
	if !ok {
		return Nil(), storage.NilOID, false, fmt.Errorf("%w: %q", ErrUnknownAttr, attr)
	}
	hist, err := db.historyLocked(oid)
	if err != nil {
		return Nil(), storage.NilOID, false, err
	}
	sort.SliceStable(hist, func(i, j int) bool { return hist[i].ValidTime < hist[j].ValidTime })
	for i := len(hist) - 1; i >= 0; i-- {
		if hist[i].ValidTime > t {
			continue
		}
		step, err := db.readStep(hist[i].Step)
		if err != nil {
			return Nil(), storage.NilOID, false, err
		}
		if v, ok := step.attrValue(id); ok {
			return v, hist[i].Step, true, nil
		}
	}
	return Nil(), storage.NilOID, false, nil
}

// TimelineEntry is one assignment of an attribute over a material's history.
type TimelineEntry struct {
	ValidTime int64
	Step      storage.OID
	Value     Value
}

// AttrTimeline returns every assignment of attr to the material, in valid
// time order (insertion order among equal valid times) — the event-calculus
// style view of the audit trail.
func (db *DB) AttrTimeline(oid storage.OID, attr string) ([]TimelineEntry, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id, ok := db.cat.byAttrName[attr]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAttr, attr)
	}
	hist, err := db.historyLocked(oid)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(hist, func(i, j int) bool { return hist[i].ValidTime < hist[j].ValidTime })
	var out []TimelineEntry
	for _, h := range hist {
		step, err := db.readStep(h.Step)
		if err != nil {
			return nil, err
		}
		if v, ok := step.attrValue(id); ok {
			out = append(out, TimelineEntry{ValidTime: h.ValidTime, Step: h.Step, Value: v})
		}
	}
	return out, nil
}

// DumpStats summarizes a full database scan.
type DumpStats struct {
	Materials   uint64
	Steps       uint64 // history entries visited (batch steps count once per material)
	AttrValues  uint64
	HistoryRead uint64 // total history entries including duplicates
}

// Dump walks every material and its entire event history — the benchmark's
// archival scan. It touches each material record, each history chunk and
// each referenced step record, and returns volume statistics.
func (db *DB) Dump() (DumpStats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var st DumpStats
	seen := make(map[storage.OID]struct{})
	for _, mc := range db.cat.materialClasses {
		err := db.scanExtent(mc.extentHead, func(moid storage.OID) error {
			st.Materials++
			hist, err := db.historyLocked(moid)
			if err != nil {
				return err
			}
			for _, h := range hist {
				st.HistoryRead++
				if _, dup := seen[h.Step]; dup {
					continue
				}
				seen[h.Step] = struct{}{}
				step, err := db.readStep(h.Step)
				if err != nil {
					return err
				}
				st.Steps++
				st.AttrValues += uint64(len(step.attrIDs))
			}
			return nil
		})
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// StorageSchema returns the names of the fixed storage-schema classes, as in
// the paper's Table 1. The user schema evolves freely; the storage schema
// never changes.
func StorageSchema() []string {
	return []string{"sm_step", "sm_material", "material_set"}
}
