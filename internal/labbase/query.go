package labbase

import (
	"fmt"
	"sort"

	"labflow/internal/storage"
)

// HistoryEntry is one event in a material's audit trail.
type HistoryEntry struct {
	Step      storage.OID
	ValidTime int64
}

// History returns the material's event history in insertion (transaction
// time) order, oldest first. Valid-time order may differ when steps were
// recorded out of order; see MostRecent.
func (db *DB) History(oid storage.OID) ([]HistoryEntry, error) {
	s := db.acquire()
	defer s.Close()
	return s.History(oid)
}

// History returns the material's event history as of the snapshot.
func (s *Snap) History(oid storage.OID) ([]HistoryEntry, error) {
	m, err := s.readMaterial(oid)
	if err != nil {
		return nil, err
	}
	return s.db.historyFrom(m.historyHead, m.historyCount)
}

// historyFrom walks a history chain from head, returning exactly the first
// total entries in insertion order. History chunks grow by in-place append
// with the count byte written last and never rewrite existing entries, so a
// snapshot reader handed a capture-time (head, count) pair sees exactly its
// capture-time prefix even while the writer keeps appending: only the head
// chunk can have grown (non-head chunks are full by construction), and
// total truncates it.
func (db *DB) historyFrom(head storage.OID, total uint64) ([]HistoryEntry, error) {
	var chunks [][]byte
	for c := head; !c.IsNil(); {
		data, err := db.sm.Read(c)
		if err != nil {
			return nil, fmt.Errorf("labbase: read history chunk: %w", err)
		}
		if err := checkHistoryChunk(data); err != nil {
			return nil, err
		}
		chunks = append(chunks, data)
		c = historyChunkNext(data)
	}
	out := make([]HistoryEntry, 0, int(total))
	validHead := int(total) - (len(chunks)-1)*historyChunkCap
	for i := len(chunks) - 1; i >= 0; i-- {
		data := chunks[i]
		n := historyChunkCount(data)
		if i == 0 {
			if validHead < 0 || validHead > n {
				return nil, fmt.Errorf("labbase: history chain disagrees with count %d", total)
			}
			n = validHead
		}
		for j := 0; j < n; j++ {
			e := historyChunkEntry(data, j)
			out = append(out, HistoryEntry{Step: e.step, ValidTime: e.validTime})
		}
	}
	return out, nil
}

// StepsInvolving returns the OIDs of every step that processed the material,
// in insertion order (oldest first) — the step projection of History served
// from the reverse involves index in O(result) instead of a history-chain
// walk.
func (db *DB) StepsInvolving(oid storage.OID) ([]storage.OID, error) {
	s := db.acquire()
	defer s.Close()
	return s.StepsInvolving(oid)
}

// StepsInvolving answers from the snapshot's reverse involves index.
func (s *Snap) StepsInvolving(oid storage.OID) ([]storage.OID, error) {
	if _, err := s.readMaterial(oid); err != nil {
		return nil, err
	}
	l, _ := treapGet(s.invRootView(), uint64(oid))
	return l.invSteps(), nil
}

// MostRecent answers the benchmark's signature query: the value of attr on
// the most recent (by valid time) step that assigned it to the material.
// It uses the most-recent index — O(1) in history length — and returns the
// value, the step that produced it, and whether any step assigned the
// attribute at all.
func (db *DB) MostRecent(oid storage.OID, attr string) (Value, storage.OID, bool, error) {
	s := db.acquire()
	defer s.Close()
	return s.MostRecent(oid, attr)
}

// MostRecent answers the signature query as of the snapshot.
func (s *Snap) MostRecent(oid storage.OID, attr string) (Value, storage.OID, bool, error) {
	id, ok := s.catView().byAttrName[attr]
	if !ok {
		return Nil(), storage.NilOID, false, fmt.Errorf("%w: %q", ErrUnknownAttr, attr)
	}
	m, err := s.readMaterial(oid)
	if err != nil {
		return Nil(), storage.NilOID, false, err
	}
	if m.mrIndex.IsNil() {
		return Nil(), storage.NilOID, false, nil
	}
	data, err := s.readMR(m.mrIndex)
	if err != nil {
		return Nil(), storage.NilOID, false, err
	}
	i := mrFind(data, id)
	if i < 0 {
		return Nil(), storage.NilOID, false, nil
	}
	e := mrGet(data, i)
	step, err := s.db.readStep(e.step)
	if err != nil {
		return Nil(), storage.NilOID, false, fmt.Errorf("labbase: most-recent step: %w", err)
	}
	v, ok := step.attrValue(id)
	if !ok {
		return Nil(), storage.NilOID, false, fmt.Errorf("labbase: most-recent index names step %v without attribute %q", e.step, attr)
	}
	return v, e.step, true, nil
}

// MostRecentScan answers the same query by scanning the full history — the
// correctness oracle for the index, and the cost the index saves. Among
// steps with equal valid time, the latest-inserted wins, matching the
// index's tie-break.
func (db *DB) MostRecentScan(oid storage.OID, attr string) (Value, storage.OID, bool, error) {
	s := db.acquire()
	defer s.Close()
	return s.MostRecentScan(oid, attr)
}

// MostRecentScan answers the oracle query as of the snapshot.
func (s *Snap) MostRecentScan(oid storage.OID, attr string) (Value, storage.OID, bool, error) {
	id, ok := s.catView().byAttrName[attr]
	if !ok {
		return Nil(), storage.NilOID, false, fmt.Errorf("%w: %q", ErrUnknownAttr, attr)
	}
	hist, err := s.History(oid)
	if err != nil {
		return Nil(), storage.NilOID, false, err
	}
	// Stable sort by valid time keeps insertion order among ties; walking
	// from the back then prefers the latest-inserted of the newest steps.
	sort.SliceStable(hist, func(i, j int) bool { return hist[i].ValidTime < hist[j].ValidTime })
	for i := len(hist) - 1; i >= 0; i-- {
		step, err := s.db.readStep(hist[i].Step)
		if err != nil {
			return Nil(), storage.NilOID, false, err
		}
		if v, ok := step.attrValue(id); ok {
			return v, hist[i].Step, true, nil
		}
	}
	return Nil(), storage.NilOID, false, nil
}

// MostRecentAsOf answers the historical form of the signature query: the
// value attr had *as of* valid time t — from the most recent step with
// ValidTime <= t that assigned it. Ties in valid time resolve to the
// latest-inserted step, consistent with MostRecent.
func (db *DB) MostRecentAsOf(oid storage.OID, attr string, t int64) (Value, storage.OID, bool, error) {
	s := db.acquire()
	defer s.Close()
	return s.MostRecentAsOf(oid, attr, t)
}

// MostRecentAsOf answers the historical query as of the snapshot.
func (s *Snap) MostRecentAsOf(oid storage.OID, attr string, t int64) (Value, storage.OID, bool, error) {
	id, ok := s.catView().byAttrName[attr]
	if !ok {
		return Nil(), storage.NilOID, false, fmt.Errorf("%w: %q", ErrUnknownAttr, attr)
	}
	hist, err := s.History(oid)
	if err != nil {
		return Nil(), storage.NilOID, false, err
	}
	sort.SliceStable(hist, func(i, j int) bool { return hist[i].ValidTime < hist[j].ValidTime })
	for i := len(hist) - 1; i >= 0; i-- {
		if hist[i].ValidTime > t {
			continue
		}
		step, err := s.db.readStep(hist[i].Step)
		if err != nil {
			return Nil(), storage.NilOID, false, err
		}
		if v, ok := step.attrValue(id); ok {
			return v, hist[i].Step, true, nil
		}
	}
	return Nil(), storage.NilOID, false, nil
}

// TimelineEntry is one assignment of an attribute over a material's history.
type TimelineEntry struct {
	ValidTime int64
	Step      storage.OID
	Value     Value
}

// AttrTimeline returns every assignment of attr to the material, in valid
// time order (insertion order among equal valid times) — the event-calculus
// style view of the audit trail.
func (db *DB) AttrTimeline(oid storage.OID, attr string) ([]TimelineEntry, error) {
	s := db.acquire()
	defer s.Close()
	return s.AttrTimeline(oid, attr)
}

// AttrTimeline returns the attribute's assignment timeline as of the
// snapshot.
func (s *Snap) AttrTimeline(oid storage.OID, attr string) ([]TimelineEntry, error) {
	id, ok := s.catView().byAttrName[attr]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAttr, attr)
	}
	hist, err := s.History(oid)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(hist, func(i, j int) bool { return hist[i].ValidTime < hist[j].ValidTime })
	var out []TimelineEntry
	for _, h := range hist {
		step, err := s.db.readStep(h.Step)
		if err != nil {
			return nil, err
		}
		if v, ok := step.attrValue(id); ok {
			out = append(out, TimelineEntry{ValidTime: h.ValidTime, Step: h.Step, Value: v})
		}
	}
	return out, nil
}

// DumpStats summarizes a full database scan.
type DumpStats struct {
	Materials   uint64
	Steps       uint64 // history entries visited (batch steps count once per material)
	AttrValues  uint64
	HistoryRead uint64 // total history entries including duplicates
}

// Dump walks every material and its entire event history — the benchmark's
// archival scan. It touches each material record, each history chunk and
// each referenced step record, and returns volume statistics.
func (db *DB) Dump() (DumpStats, error) {
	s := db.acquire()
	defer s.Close()
	return s.Dump()
}

// Dump runs the archival scan against the snapshot.
func (s *Snap) Dump() (DumpStats, error) {
	var st DumpStats
	cat := s.catView()
	cnt := s.cntView()
	seen := make(map[storage.OID]struct{})
	for _, mc := range cat.materialClasses {
		err := s.scanExtentN(mc.extentHead, cnt.matsByClass[mc.ID-1], func(moid storage.OID) error {
			st.Materials++
			hist, err := s.History(moid)
			if err != nil {
				return err
			}
			for _, h := range hist {
				st.HistoryRead++
				if _, dup := seen[h.Step]; dup {
					continue
				}
				seen[h.Step] = struct{}{}
				step, err := s.db.readStep(h.Step)
				if err != nil {
					return err
				}
				st.Steps++
				st.AttrValues += uint64(len(step.attrIDs))
			}
			return nil
		})
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// StorageSchema returns the names of the fixed storage-schema classes, as in
// the paper's Table 1. The user schema evolves freely; the storage schema
// never changes.
func StorageSchema() []string {
	return []string{"sm_step", "sm_material", "material_set"}
}
