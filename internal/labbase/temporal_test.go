package labbase

import (
	"fmt"
	"math/rand"
	"testing"

	"labflow/internal/storage"
)

// seedTemporal records steps with the given valid times, in the given
// (arrival) order, each carrying value fmt.Sprint(arrival index).
func seedTemporal(t *testing.T, validTimes []int64) (*DB, storage.OID, []storage.OID) {
	t.Helper()
	db := openMem(t)
	defineBasics(t, db)
	begin(t, db)
	m, err := db.CreateMaterial("clone", "c", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	steps := make([]storage.OID, len(validTimes))
	for i, vt := range validTimes {
		steps[i], err = db.RecordStep(StepSpec{
			Class: "determine_sequence", ValidTime: vt,
			Materials: []storage.OID{m},
			Attrs:     []AttrValue{{Name: "sequence", Value: String(fmt.Sprint(i))}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	commit(t, db)
	return db, m, steps
}

func TestMostRecentAsOf(t *testing.T) {
	// Arrival order deliberately scrambles valid time: 10, 30, 20.
	db, m, steps := seedTemporal(t, []int64{10, 30, 20})

	cases := []struct {
		asOf     int64
		wantVal  string
		wantStep int // index into steps; -1 = not found
	}{
		{5, "", -1},
		{10, "0", 0},
		{15, "0", 0},
		{20, "2", 2}, // the late arrival with valid time 20
		{25, "2", 2},
		{30, "1", 1},
		{1000, "1", 1},
	}
	for _, c := range cases {
		v, src, found, err := db.MostRecentAsOf(m, "sequence", c.asOf)
		if err != nil {
			t.Fatalf("AsOf(%d): %v", c.asOf, err)
		}
		if c.wantStep < 0 {
			if found {
				t.Errorf("AsOf(%d) found %v, want nothing", c.asOf, v)
			}
			continue
		}
		if !found || v.Str != c.wantVal || src != steps[c.wantStep] {
			t.Errorf("AsOf(%d) = %v from %v, want %q from step %d", c.asOf, v, src, c.wantVal, c.wantStep)
		}
	}
	// AsOf at the horizon equals MostRecent.
	vNow, sNow, _, _ := db.MostRecent(m, "sequence")
	vAs, sAs, _, _ := db.MostRecentAsOf(m, "sequence", 1<<60)
	if !vNow.Equal(vAs) || sNow != sAs {
		t.Errorf("AsOf(inf) = (%v, %v), MostRecent = (%v, %v)", vAs, sAs, vNow, sNow)
	}
	if _, _, _, err := db.MostRecentAsOf(m, "nosuch", 10); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestMostRecentAsOfEqualTimes(t *testing.T) {
	// Two assignments at the same valid time: the later-inserted wins, as
	// in the live index.
	db, m, steps := seedTemporal(t, []int64{10, 10})
	v, src, found, err := db.MostRecentAsOf(m, "sequence", 10)
	if err != nil || !found || v.Str != "1" || src != steps[1] {
		t.Fatalf("AsOf tie = %v from %v (%v), want 1 from second step", v, src, err)
	}
}

func TestAttrTimeline(t *testing.T) {
	db, m, steps := seedTemporal(t, []int64{10, 30, 20})
	tl, err := db.AttrTimeline(m, "sequence")
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 3 {
		t.Fatalf("timeline len = %d", len(tl))
	}
	wantOrder := []struct {
		vt   int64
		step int
	}{{10, 0}, {20, 2}, {30, 1}}
	for i, w := range wantOrder {
		if tl[i].ValidTime != w.vt || tl[i].Step != steps[w.step] {
			t.Errorf("timeline[%d] = t%d step %v, want t%d step %d", i, tl[i].ValidTime, tl[i].Step, w.vt, w.step)
		}
	}
	// An attribute never assigned yields an empty timeline.
	begin(t, db)
	if _, err := db.DefineAttr("ghost", KindInt); err != nil {
		t.Fatal(err)
	}
	commit(t, db)
	tl, err = db.AttrTimeline(m, "ghost")
	if err != nil || len(tl) != 0 {
		t.Errorf("ghost timeline = %v, %v", tl, err)
	}
}

// TestAsOfAgainstBruteForce cross-checks MostRecentAsOf against a direct
// recomputation for random valid-time patterns.
func TestAsOfAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vts := make([]int64, 60)
	for i := range vts {
		vts[i] = int64(rng.Intn(40)) // heavy collisions
	}
	db, m, steps := seedTemporal(t, vts)
	for asOf := int64(-1); asOf <= 41; asOf++ {
		// Brute force: latest arrival among max valid time <= asOf.
		best := -1
		for i, vt := range vts {
			if vt > asOf {
				continue
			}
			if best < 0 || vt > vts[best] || (vt == vts[best] && i > best) {
				best = i
			}
		}
		v, src, found, err := db.MostRecentAsOf(m, "sequence", asOf)
		if err != nil {
			t.Fatal(err)
		}
		if best < 0 {
			if found {
				t.Fatalf("asOf %d: found %v, want none", asOf, v)
			}
			continue
		}
		if !found || v.Str != fmt.Sprint(best) || src != steps[best] {
			t.Fatalf("asOf %d: got %v from %v, want %d", asOf, v, src, best)
		}
	}
}
