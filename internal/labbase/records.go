package labbase

import (
	"encoding/binary"
	"fmt"

	"labflow/internal/rec"
	"labflow/internal/storage"
)

// This file holds the on-disk codecs for the storage schema (sm_material,
// sm_step, material_set) and LabBase's access structures (history chunks,
// most-recent indexes, class extents, counters).
//
// Access structures that are appended to in place use fixed-width layouts
// pre-sized to their full capacity, so the common append is a same-size
// object write that never relocates the record. Immutable records (steps,
// sets) and rarely-rewritten ones (materials, catalog) use the compact
// varint encoding from package rec.

// --- sm_material -------------------------------------------------------------

type materialRec struct {
	classID      ClassID
	stateID      StateID
	createdAt    int64 // valid time of creation
	name         string
	historyHead  storage.OID // newest history chunk ("involves" list)
	historyCount uint64
	mrIndex      storage.OID // most-recent index record
}

func (m *materialRec) encodeTo(e *rec.Encoder) {
	e.Grow(32 + len(m.name))
	e.Byte(1)
	e.Uint(uint64(m.classID))
	e.Uint(uint64(m.stateID))
	e.Int(m.createdAt)
	e.String(m.name)
	e.Uint(uint64(m.historyHead))
	e.Uint(m.historyCount)
	e.Uint(uint64(m.mrIndex))
}

func (m *materialRec) encode() []byte {
	e := rec.NewEncoder(32 + len(m.name))
	m.encodeTo(e)
	return e.Bytes()
}

func decodeMaterialRec(data []byte) (*materialRec, error) {
	d := rec.NewDecoder(data)
	if v := d.Byte(); v != 1 {
		return nil, fmt.Errorf("labbase: unsupported material record version %d", v)
	}
	m := &materialRec{
		classID:   ClassID(d.Uint()),
		stateID:   StateID(d.Uint()),
		createdAt: d.Int(),
		name:      d.String(),
	}
	m.historyHead = storage.OID(d.Uint())
	m.historyCount = d.Uint()
	m.mrIndex = storage.OID(d.Uint())
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("labbase: material record: %w", err)
	}
	return m, nil
}

// readMaterial returns a material record, served from the decode cache when
// possible. The caller receives a private copy and may mutate it freely; the
// cache entry is only refreshed through writeMaterial/allocMaterial. A cache
// miss is a single-flight fill, so concurrent readers of the same material
// share one storage read.
func (db *DB) readMaterial(oid storage.OID) (*materialRec, error) {
	if oid.Segment() != storage.SegMaterial {
		return nil, fmt.Errorf("%w: %v", ErrNotMaterial, oid)
	}
	m, err := db.matCache.getOrFill(oid, func() (materialRec, error) {
		data, err := db.sm.Read(oid)
		if err != nil {
			return materialRec{}, err
		}
		m, err := decodeMaterialRec(data)
		if err != nil {
			return materialRec{}, err
		}
		return *m, nil
	})
	if err != nil {
		return nil, err
	}
	return &m, nil
}

// writeMaterial re-encodes a material record in place (through a pooled
// encoder; storage managers copy the bytes before returning) and refreshes
// the decode cache, or invalidates it when the write fails.
func (db *DB) writeMaterial(oid storage.OID, m *materialRec) error {
	e := rec.GetEncoder()
	m.encodeTo(e)
	err := db.sm.Write(oid, e.Bytes())
	rec.PutEncoder(e)
	if err != nil {
		db.matCache.invalidate(oid)
		return err
	}
	db.matCache.put(oid, *m)
	return nil
}

// allocMaterial stores a fresh material record and seeds the decode cache.
func (db *DB) allocMaterial(m *materialRec) (storage.OID, error) {
	e := rec.GetEncoder()
	m.encodeTo(e)
	oid, err := db.sm.Allocate(storage.SegMaterial, e.Bytes())
	rec.PutEncoder(e)
	if err != nil {
		return storage.NilOID, err
	}
	db.matCache.put(oid, *m)
	return oid, nil
}

// --- sm_step -----------------------------------------------------------------

type stepRec struct {
	classID   StepClassID
	version   Version
	validTime int64
	txnTime   int64
	materials []storage.OID
	set       storage.OID // optional material_set processed by this step
	attrIDs   []AttrID
	attrVals  []Value
}

func (s *stepRec) encodeTo(e *rec.Encoder) {
	// Pre-size for the fixed fields, the OID lists and the attribute tags;
	// value payloads (strings, hit lists) grow the buffer as needed and the
	// pooled buffer keeps that capacity for the next step.
	e.Grow(32 + 10*len(s.materials) + 16*len(s.attrIDs))
	e.Byte(1)
	e.Uint(uint64(s.classID))
	e.Uint(uint64(s.version))
	e.Int(s.validTime)
	e.Int(s.txnTime)
	e.Uint(uint64(len(s.materials)))
	for _, m := range s.materials {
		e.Uint(uint64(m))
	}
	e.Uint(uint64(s.set))
	e.Uint(uint64(len(s.attrIDs)))
	for i, a := range s.attrIDs {
		e.Uint(uint64(a))
		s.attrVals[i].encode(e)
	}
}

func (s *stepRec) encode() []byte {
	e := rec.NewEncoder(64)
	s.encodeTo(e)
	return e.Bytes()
}

func decodeStepRec(data []byte) (*stepRec, error) {
	d := rec.NewDecoder(data)
	if v := d.Byte(); v != 1 {
		return nil, fmt.Errorf("labbase: unsupported step record version %d", v)
	}
	s := &stepRec{
		classID:   StepClassID(d.Uint()),
		version:   Version(d.Uint()),
		validTime: d.Int(),
		txnTime:   d.Int(),
	}
	nm := d.Count(1 << 24)
	if d.Err() == nil {
		s.materials = make([]storage.OID, nm)
		for i := range s.materials {
			s.materials[i] = storage.OID(d.Uint())
		}
	}
	s.set = storage.OID(d.Uint())
	na := d.Count(1 << 24)
	if d.Err() == nil {
		s.attrIDs = make([]AttrID, na)
		s.attrVals = make([]Value, na)
		for i := range s.attrIDs {
			s.attrIDs[i] = AttrID(d.Uint())
			s.attrVals[i] = decodeValue(d)
		}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("labbase: step record: %w", err)
	}
	return s, nil
}

func (s *stepRec) attrValue(id AttrID) (Value, bool) {
	for i, a := range s.attrIDs {
		if a == id {
			return s.attrVals[i], true
		}
	}
	return Nil(), false
}

func (db *DB) readStep(oid storage.OID) (*stepRec, error) {
	data, err := db.sm.Read(oid)
	if err != nil {
		return nil, err
	}
	return decodeStepRec(data)
}

// --- material_set ------------------------------------------------------------

func encodeSetTo(e *rec.Encoder, members []storage.OID) {
	e.Grow(8 + 9*len(members))
	e.Byte(1)
	e.Uint(uint64(len(members)))
	for _, m := range members {
		e.Uint(uint64(m))
	}
}

func encodeSetRec(members []storage.OID) []byte {
	e := rec.NewEncoder(8 + 9*len(members))
	encodeSetTo(e, members)
	return e.Bytes()
}

func decodeSetRec(data []byte) ([]storage.OID, error) {
	d := rec.NewDecoder(data)
	if v := d.Byte(); v != 1 {
		return nil, fmt.Errorf("labbase: unsupported set record version %d", v)
	}
	n := d.Count(1 << 24)
	if d.Err() != nil {
		return nil, fmt.Errorf("labbase: corrupt set record")
	}
	members := make([]storage.OID, n)
	for i := range members {
		members[i] = storage.OID(d.Uint())
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("labbase: set record: %w", err)
	}
	return members, nil
}

// --- history chunks ----------------------------------------------------------

// History lists are chains of fixed-capacity chunks, newest chunk first.
// Within a chunk, entries are in insertion (transaction) order. Layout:
//
//	[0]    version
//	[1]    count
//	[2]    capacity
//	[3:11] next chunk OID (older; 0 = none)
//	[11+i*16 : ] entry i: step OID u64, valid time u64 (int64 bits)
const (
	historyChunkCap  = 64
	historyChunkSize = 11 + historyChunkCap*16
)

type historyEntry struct {
	step      storage.OID
	validTime int64
}

func newHistoryChunk(next storage.OID) []byte {
	b := make([]byte, historyChunkSize)
	b[0] = 1
	b[2] = historyChunkCap
	binary.LittleEndian.PutUint64(b[3:11], uint64(next))
	return b
}

func historyChunkCount(b []byte) int { return int(b[1]) }
func historyChunkNext(b []byte) storage.OID {
	return storage.OID(binary.LittleEndian.Uint64(b[3:11]))
}

func historyChunkEntry(b []byte, i int) historyEntry {
	base := 11 + i*16
	return historyEntry{
		step:      storage.OID(binary.LittleEndian.Uint64(b[base:])),
		validTime: int64(binary.LittleEndian.Uint64(b[base+8:])),
	}
}

// historyChunkAppend adds an entry in place, reporting false when full.
func historyChunkAppend(b []byte, e historyEntry) bool {
	n := historyChunkCount(b)
	if n >= int(b[2]) {
		return false
	}
	base := 11 + n*16
	binary.LittleEndian.PutUint64(b[base:], uint64(e.step))
	binary.LittleEndian.PutUint64(b[base+8:], uint64(e.validTime))
	b[1] = byte(n + 1)
	return true
}

func checkHistoryChunk(b []byte) error {
	if len(b) != historyChunkSize || b[0] != 1 {
		return fmt.Errorf("labbase: corrupt history chunk (%d bytes)", len(b))
	}
	return nil
}

// --- most-recent index -------------------------------------------------------

// The most-recent index is the paper's "special access structure" for
// most-recent values: per material, a compact table attr -> (valid time,
// step). Layout:
//
//	[0]   version
//	[1:3] count u16
//	[3:5] capacity u16
//	[5+i*20 : ] entry i: attr u32, valid time u64 (int64 bits), step OID u64
const (
	mrEntrySize  = 20
	mrInitialCap = 8
	mrHeaderSize = 5
)

type mrEntry struct {
	attr      AttrID
	validTime int64
	step      storage.OID
}

func newMRIndex(capacity int) []byte {
	b := make([]byte, mrHeaderSize+capacity*mrEntrySize)
	b[0] = 1
	binary.LittleEndian.PutUint16(b[3:5], uint16(capacity))
	return b
}

func mrCount(b []byte) int { return int(binary.LittleEndian.Uint16(b[1:3])) }
func mrCap(b []byte) int   { return int(binary.LittleEndian.Uint16(b[3:5])) }

func mrGet(b []byte, i int) mrEntry {
	base := mrHeaderSize + i*mrEntrySize
	return mrEntry{
		attr:      AttrID(binary.LittleEndian.Uint32(b[base:])),
		validTime: int64(binary.LittleEndian.Uint64(b[base+4:])),
		step:      storage.OID(binary.LittleEndian.Uint64(b[base+12:])),
	}
}

func mrPut(b []byte, i int, e mrEntry) {
	base := mrHeaderSize + i*mrEntrySize
	binary.LittleEndian.PutUint32(b[base:], uint32(e.attr))
	binary.LittleEndian.PutUint64(b[base+4:], uint64(e.validTime))
	binary.LittleEndian.PutUint64(b[base+12:], uint64(e.step))
}

// mrFind returns the entry index for attr, or -1.
func mrFind(b []byte, attr AttrID) int {
	n := mrCount(b)
	for i := 0; i < n; i++ {
		if AttrID(binary.LittleEndian.Uint32(b[mrHeaderSize+i*mrEntrySize:])) == attr {
			return i
		}
	}
	return -1
}

// mrUpsert installs e if it is newer in valid time than the current entry
// for its attribute (ties go to the newcomer: among equal valid times the
// latest-entered step wins). It returns the possibly-reallocated buffer and
// whether it changed.
func mrUpsert(b []byte, e mrEntry) ([]byte, bool) {
	if i := mrFind(b, e.attr); i >= 0 {
		cur := mrGet(b, i)
		if e.validTime >= cur.validTime {
			mrPut(b, i, e)
			return b, true
		}
		return b, false
	}
	n := mrCount(b)
	if n >= mrCap(b) {
		nb := newMRIndex(mrCap(b) * 2)
		copy(nb[mrHeaderSize:], b[mrHeaderSize:mrHeaderSize+n*mrEntrySize])
		binary.LittleEndian.PutUint16(nb[1:3], uint16(n))
		b = nb
	}
	mrPut(b, n, e)
	binary.LittleEndian.PutUint16(b[1:3], uint16(n+1))
	return b, true
}

func checkMRIndex(b []byte) error {
	if len(b) < mrHeaderSize || b[0] != 1 || len(b) != mrHeaderSize+mrCap(b)*mrEntrySize {
		return fmt.Errorf("labbase: corrupt most-recent index (%d bytes)", len(b))
	}
	return nil
}

// --- class extents -----------------------------------------------------------

// Extents enumerate the instances of a class for counting and scans: chains
// of fixed-capacity chunks of OIDs, newest chunk first. Layout:
//
//	[0]    version
//	[1:3]  count u16
//	[3:5]  capacity u16
//	[5:13] next chunk OID
//	[13+i*8 : ] entry i: OID u64
const (
	extentChunkCap  = 256
	extentChunkSize = 13 + extentChunkCap*8
)

func newExtentChunk(next storage.OID) []byte {
	b := make([]byte, extentChunkSize)
	b[0] = 1
	binary.LittleEndian.PutUint16(b[3:5], extentChunkCap)
	binary.LittleEndian.PutUint64(b[5:13], uint64(next))
	return b
}

func extentCount(b []byte) int { return int(binary.LittleEndian.Uint16(b[1:3])) }
func extentNext(b []byte) storage.OID {
	return storage.OID(binary.LittleEndian.Uint64(b[5:13]))
}
func extentGet(b []byte, i int) storage.OID {
	return storage.OID(binary.LittleEndian.Uint64(b[13+i*8:]))
}

func extentAppend(b []byte, oid storage.OID) bool {
	n := extentCount(b)
	if n >= int(binary.LittleEndian.Uint16(b[3:5])) {
		return false
	}
	binary.LittleEndian.PutUint64(b[13+n*8:], uint64(oid))
	binary.LittleEndian.PutUint16(b[1:3], uint16(n+1))
	return true
}

func checkExtentChunk(b []byte) error {
	if len(b) != extentChunkSize || b[0] != 1 {
		return fmt.Errorf("labbase: corrupt extent chunk (%d bytes)", len(b))
	}
	return nil
}

// appendToExtent appends oid to the extent whose head is *head, allocating a
// new head chunk when the current one is full, and reports whether the head
// changed (so the caller can mark the catalog dirty).
func (db *DB) appendToExtent(head *storage.OID, oid storage.OID) (bool, error) {
	if head.IsNil() {
		data := newExtentChunk(storage.NilOID)
		extentAppend(data, oid)
		chunk, err := db.sm.Allocate(storage.SegIndex, data)
		if err != nil {
			return false, fmt.Errorf("labbase: extent chunk: %w", err)
		}
		*head = chunk
		return true, nil
	}
	data, err := db.sm.Read(*head)
	if err != nil {
		return false, fmt.Errorf("labbase: read extent head: %w", err)
	}
	if err := checkExtentChunk(data); err != nil {
		return false, err
	}
	if extentAppend(data, oid) {
		return false, db.sm.Write(*head, data)
	}
	ndata := newExtentChunk(*head)
	extentAppend(ndata, oid)
	chunk, err := db.sm.AllocateNear(*head, ndata)
	if err != nil {
		return false, fmt.Errorf("labbase: extent chunk: %w", err)
	}
	*head = chunk
	return true, nil
}

// scanExtent calls fn for every OID in the extent chain, oldest chunk last
// is reversed so callers see insertion order (oldest first).
func (db *DB) scanExtent(head storage.OID, fn func(storage.OID) error) error {
	var chunks [][]byte
	for oid := head; !oid.IsNil(); {
		data, err := db.sm.Read(oid)
		if err != nil {
			return fmt.Errorf("labbase: read extent chunk: %w", err)
		}
		if err := checkExtentChunk(data); err != nil {
			return err
		}
		chunks = append(chunks, data)
		oid = extentNext(data)
	}
	for i := len(chunks) - 1; i >= 0; i-- {
		data := chunks[i]
		n := extentCount(data)
		for j := 0; j < n; j++ {
			if err := fn(extentGet(data, j)); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- counters ----------------------------------------------------------------

// counters mirrors the hot per-class and per-state instance counts, persisted
// as one fixed-width record so the common bump is an in-place page write.
type counters struct {
	matsByClass  []uint64
	stepsByClass []uint64
	matsByState  []uint64
}

func (c *counters) growTo(nmc, nsc, nst int) {
	for len(c.matsByClass) < nmc {
		c.matsByClass = append(c.matsByClass, 0)
	}
	for len(c.stepsByClass) < nsc {
		c.stepsByClass = append(c.stepsByClass, 0)
	}
	for len(c.matsByState) < nst {
		c.matsByState = append(c.matsByState, 0)
	}
}

// clone copies the counters for a published snapshot.
func (c *counters) clone() counters {
	return counters{
		matsByClass:  append([]uint64(nil), c.matsByClass...),
		stepsByClass: append([]uint64(nil), c.stepsByClass...),
		matsByState:  append([]uint64(nil), c.matsByState...),
	}
}

func (c *counters) totalMaterials() uint64 {
	var t uint64
	for _, v := range c.matsByClass {
		t += v
	}
	return t
}

func (c *counters) totalSteps() uint64 {
	var t uint64
	for _, v := range c.stepsByClass {
		t += v
	}
	return t
}

// appendTo encodes the counters onto buf (normally a reused scratch slice;
// storage managers copy the bytes, so the same scratch serves every commit).
func (c *counters) appendTo(buf []byte) []byte {
	n := 7 + 8*(len(c.matsByClass)+len(c.stepsByClass)+len(c.matsByState))
	var b []byte
	if cap(buf) >= n {
		b = buf[:n]
		for i := range b {
			b[i] = 0
		}
	} else {
		b = make([]byte, n)
	}
	b[0] = 1
	binary.LittleEndian.PutUint16(b[1:3], uint16(len(c.matsByClass)))
	binary.LittleEndian.PutUint16(b[3:5], uint16(len(c.stepsByClass)))
	binary.LittleEndian.PutUint16(b[5:7], uint16(len(c.matsByState)))
	off := 7
	for _, group := range [][]uint64{c.matsByClass, c.stepsByClass, c.matsByState} {
		for _, v := range group {
			binary.LittleEndian.PutUint64(b[off:], v)
			off += 8
		}
	}
	return b
}

func (c *counters) encode() []byte { return c.appendTo(nil) }

func decodeCounters(b []byte) (counters, error) {
	var c counters
	if len(b) < 7 || b[0] != 1 {
		return c, fmt.Errorf("labbase: corrupt counters record")
	}
	nmc := int(binary.LittleEndian.Uint16(b[1:3]))
	nsc := int(binary.LittleEndian.Uint16(b[3:5]))
	nst := int(binary.LittleEndian.Uint16(b[5:7]))
	if len(b) != 7+8*(nmc+nsc+nst) {
		return c, fmt.Errorf("labbase: counters record size mismatch")
	}
	off := 7
	read := func(n int) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = binary.LittleEndian.Uint64(b[off:])
			off += 8
		}
		return out
	}
	c.matsByClass = read(nmc)
	c.stepsByClass = read(nsc)
	c.matsByState = read(nst)
	return c, nil
}
