package labbase

import (
	"fmt"
	"maps"
	"slices"
	"sort"
	"strconv"
	"strings"

	"labflow/internal/rec"
	"labflow/internal/storage"
)

// ClassID identifies a material class; StepClassID a step class; AttrID an
// attribute; StateID a workflow state; Version a step-class version. All are
// 1-based; zero means "none".
type (
	ClassID     uint32
	StepClassID uint32
	AttrID      uint32
	StateID     uint32
	Version     uint32
)

// AttrDef declares an attribute: a name and the kind of values it takes
// (KindAny for untyped attributes).
type AttrDef struct {
	Name string
	Kind Kind
}

// MaterialClass describes one material class in the user schema. The EER
// diagram's is-a links are the Parent field; the two-level diagram of the
// paper has every lab class under the abstract root "material".
type MaterialClass struct {
	ID     ClassID
	Name   string
	Parent ClassID // 0 for a root class

	extentHead storage.OID
}

// StepClass describes one step class. Versions accumulate as the workflow is
// re-engineered: each distinct attribute set recorded under this class name
// becomes (or matches) a version, and step instances stay associated with
// the version that created them forever.
type StepClass struct {
	ID       StepClassID
	Name     string
	Versions []StepVersion

	extentHead storage.OID
	byAttrKey  map[string]Version
}

// StepVersion is one attribute-set version of a step class.
type StepVersion struct {
	Ver   Version
	Attrs []AttrID // sorted
}

// catalog is the in-memory mirror of the persistent schema catalog.
type catalog struct {
	materialClasses []*MaterialClass // index = ID-1
	byMCName        map[string]*MaterialClass
	attrs           []AttrDef // index = ID-1
	byAttrName      map[string]AttrID
	stepClasses     []*StepClass
	bySCName        map[string]*StepClass
	states          []string // index = ID-1
	byState         map[string]StateID
	countersOID     storage.OID
	dirty           bool // needs rewrite at commit
}

// clone deep-copies the catalog for a published snapshot: class structs are
// copied (the writer keeps mutating extent heads and version lists in
// place), the name maps are rebuilt over the copies, and immutable leaves
// (version attribute slices, strings) are shared. The clone's dirty flag is
// clear — snapshots never reach the commit path.
func (c *catalog) clone() *catalog {
	n := &catalog{
		materialClasses: make([]*MaterialClass, len(c.materialClasses)),
		byMCName:        make(map[string]*MaterialClass, len(c.byMCName)),
		attrs:           slices.Clone(c.attrs),
		byAttrName:      maps.Clone(c.byAttrName),
		stepClasses:     make([]*StepClass, len(c.stepClasses)),
		bySCName:        make(map[string]*StepClass, len(c.bySCName)),
		states:          slices.Clone(c.states),
		byState:         maps.Clone(c.byState),
		countersOID:     c.countersOID,
	}
	for i, mc := range c.materialClasses {
		cm := *mc
		n.materialClasses[i] = &cm
		n.byMCName[cm.Name] = &cm
	}
	for i, sc := range c.stepClasses {
		cs := *sc
		cs.Versions = slices.Clone(sc.Versions)
		cs.byAttrKey = maps.Clone(sc.byAttrKey)
		n.stepClasses[i] = &cs
		n.bySCName[cs.Name] = &cs
	}
	return n
}

func newCatalog() *catalog {
	return &catalog{
		byMCName:   make(map[string]*MaterialClass),
		byAttrName: make(map[string]AttrID),
		bySCName:   make(map[string]*StepClass),
		byState:    make(map[string]StateID),
	}
}

// attrKey canonicalizes an attribute set for version identification: the
// paper's "it identifies versions of objects by their attribute set".
func attrKey(attrs []AttrID) string {
	sorted := make([]AttrID, len(attrs))
	copy(sorted, attrs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b strings.Builder
	for i, a := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(a), 10))
	}
	return b.String()
}

func (c *catalog) encode() []byte {
	e := rec.NewEncoder(1024)
	c.encodeTo(e)
	return e.Bytes()
}

func (c *catalog) encodeTo(e *rec.Encoder) {
	e.Byte(1) // catalog format version
	e.Uint(uint64(c.countersOID))

	e.Uint(uint64(len(c.materialClasses)))
	for _, mc := range c.materialClasses {
		e.String(mc.Name)
		e.Uint(uint64(mc.Parent))
		e.Uint(uint64(mc.extentHead))
	}

	e.Uint(uint64(len(c.attrs)))
	for _, a := range c.attrs {
		e.String(a.Name)
		e.Byte(byte(a.Kind))
	}

	e.Uint(uint64(len(c.stepClasses)))
	for _, sc := range c.stepClasses {
		e.String(sc.Name)
		e.Uint(uint64(sc.extentHead))
		e.Uint(uint64(len(sc.Versions)))
		for _, v := range sc.Versions {
			e.Uint(uint64(len(v.Attrs)))
			for _, a := range v.Attrs {
				e.Uint(uint64(a))
			}
		}
	}

	e.Uint(uint64(len(c.states)))
	for _, s := range c.states {
		e.String(s)
	}
}

func decodeCatalog(data []byte) (*catalog, error) {
	c := newCatalog()
	d := rec.NewDecoder(data)
	if v := d.Byte(); v != 1 {
		return nil, fmt.Errorf("labbase: unsupported catalog version %d", v)
	}
	c.countersOID = storage.OID(d.Uint())

	nmc := d.Count(1 << 20)
	for i := 0; i < nmc; i++ {
		mc := &MaterialClass{
			ID:     ClassID(i + 1),
			Name:   d.String(),
			Parent: ClassID(d.Uint()),
		}
		mc.extentHead = storage.OID(d.Uint())
		c.materialClasses = append(c.materialClasses, mc)
		c.byMCName[mc.Name] = mc
	}

	na := d.Count(1 << 20)
	for i := 0; i < na; i++ {
		a := AttrDef{Name: d.String(), Kind: Kind(d.Byte())}
		c.attrs = append(c.attrs, a)
		c.byAttrName[a.Name] = AttrID(i + 1)
	}

	nsc := d.Count(1 << 20)
	for i := 0; i < nsc; i++ {
		sc := &StepClass{
			ID:        StepClassID(i + 1),
			Name:      d.String(),
			byAttrKey: make(map[string]Version),
		}
		sc.extentHead = storage.OID(d.Uint())
		nv := d.Count(1 << 20)
		for v := 0; v < nv; v++ {
			sv := StepVersion{Ver: Version(v + 1)}
			nattr := d.Count(1 << 20)
			for a := 0; a < nattr; a++ {
				sv.Attrs = append(sv.Attrs, AttrID(d.Uint()))
			}
			sc.Versions = append(sc.Versions, sv)
			sc.byAttrKey[attrKey(sv.Attrs)] = sv.Ver
		}
		c.stepClasses = append(c.stepClasses, sc)
		c.bySCName[sc.Name] = sc
	}

	nst := d.Count(1 << 20)
	for i := 0; i < nst; i++ {
		name := d.String()
		c.states = append(c.states, name)
		c.byState[name] = StateID(i + 1)
	}

	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("labbase: catalog: %w", err)
	}
	return c, nil
}

func (c *catalog) materialClass(id ClassID) (*MaterialClass, error) {
	if id == 0 || int(id) > len(c.materialClasses) {
		return nil, fmt.Errorf("labbase: %w: material class %d", ErrUnknownClass, id)
	}
	return c.materialClasses[id-1], nil
}

func (c *catalog) stepClass(id StepClassID) (*StepClass, error) {
	if id == 0 || int(id) > len(c.stepClasses) {
		return nil, fmt.Errorf("labbase: %w: step class %d", ErrUnknownClass, id)
	}
	return c.stepClasses[id-1], nil
}

func (c *catalog) attr(id AttrID) (AttrDef, error) {
	if id == 0 || int(id) > len(c.attrs) {
		return AttrDef{}, fmt.Errorf("labbase: %w: attribute %d", ErrUnknownAttr, id)
	}
	return c.attrs[id-1], nil
}

func (c *catalog) stateName(id StateID) (string, error) {
	if id == 0 || int(id) > len(c.states) {
		return "", fmt.Errorf("labbase: %w: state %d", ErrUnknownState, id)
	}
	return c.states[id-1], nil
}

// isSubclass reports whether class sub equals or descends from super.
func (c *catalog) isSubclass(sub, super ClassID) bool {
	for sub != 0 {
		if sub == super {
			return true
		}
		mc, err := c.materialClass(sub)
		if err != nil {
			return false
		}
		sub = mc.Parent
	}
	return false
}
