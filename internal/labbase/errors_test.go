package labbase

import (
	"errors"
	"testing"

	"labflow/internal/storage"
)

// TestSentinelUnwrapping pins the wrapper-layer error contract: LabBase
// decorates its sentinels with context ("%w: material class %q", ...) and
// wraps storage-layer failures, so errors.Is must work both within the
// labbase layer and across the storage boundary.
func TestSentinelUnwrapping(t *testing.T) {
	db := openMem(t)
	defineBasics(t, db)

	begin(t, db)
	if _, err := db.CreateMaterial("no-such-class", "m1", "done", 1); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("CreateMaterial(unknown class) = %v; want chain containing ErrUnknownClass", err)
	}
	if _, err := db.DefineMaterialClass("orphan", "no-such-parent"); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("DefineMaterialClass(unknown parent) = %v; want chain containing ErrUnknownClass", err)
	}
	commit(t, db)

	if _, err := db.CreateMaterial("clone", "m2", "done", 2); !errors.Is(err, ErrNoTransaction) {
		t.Errorf("CreateMaterial outside txn = %v; want chain containing ErrNoTransaction", err)
	}

	if _, err := db.StepClassVersions("no-such-step"); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("StepClassVersions(unknown) = %v; want chain containing ErrUnknownClass", err)
	}
}

// TestStorageErrorsCrossTheWrapperBoundary checks that a failure raised by
// the storage manager is still matchable after LabBase's own wrapping.
func TestStorageErrorsCrossTheWrapperBoundary(t *testing.T) {
	db := openMem(t)
	defineBasics(t, db)

	bogus := storage.MakeOID(storage.SegMaterial, 987654)
	if _, err := db.GetMaterial(bogus); !errors.Is(err, storage.ErrNoSuchObject) {
		t.Errorf("GetMaterial(bogus) = %v; want chain containing storage.ErrNoSuchObject", err)
	}
}
