package labbase

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"labflow/internal/storage"
)

// TestSnapshotAcrossCommits pins a snapshot, then pushes N commits through
// the writer — new steps, a state change, new materials — and re-asserts the
// snapshot's entire capture-time view after every commit. The snapshot must
// be a fixed point: same most-recent value, same history, same counts, and
// materials created after the capture must not exist in it.
func TestSnapshotAcrossCommits(t *testing.T) {
	db := openMem(t)
	oids := loadReadSet(t, db, 4, 3)

	snapIface, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap := snapIface.(*Snap)
	defer snap.Close()

	// Capture-time expectations, read once through the snapshot itself.
	type matView struct {
		mr   Value
		hist []HistoryEntry
		st   string
	}
	want := make([]matView, len(oids))
	for i, oid := range oids {
		v, _, found, err := snap.MostRecent(oid, "reading")
		if err != nil || !found {
			t.Fatalf("capture MostRecent(%d): %v %v", i, found, err)
		}
		h, err := snap.History(oid)
		if err != nil {
			t.Fatal(err)
		}
		st, err := snap.State(oid)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = matView{mr: v, hist: h, st: st}
	}
	wantMats, err := snap.CountMaterials("sample")
	if err != nil {
		t.Fatal(err)
	}
	wantSteps, err := snap.CountSteps("measure")
	if err != nil {
		t.Fatal(err)
	}
	wantInState, err := snap.CountInState("new")
	if err != nil {
		t.Fatal(err)
	}

	check := func(round int) {
		t.Helper()
		for i, oid := range oids {
			v, _, found, err := snap.MostRecent(oid, "reading")
			if err != nil || !found || v.Int != want[i].mr.Int {
				t.Fatalf("round %d: MostRecent(%d) = %v %v %v, want %v", round, i, v, found, err, want[i].mr)
			}
			h, err := snap.History(oid)
			if err != nil || len(h) != len(want[i].hist) {
				t.Fatalf("round %d: History(%d) = %d entries, %v; want %d", round, i, len(h), err, len(want[i].hist))
			}
			for j := range h {
				if h[j] != want[i].hist[j] {
					t.Fatalf("round %d: History(%d)[%d] = %+v, want %+v", round, i, j, h[j], want[i].hist[j])
				}
			}
			if st, err := snap.State(oid); err != nil || st != want[i].st {
				t.Fatalf("round %d: State(%d) = %q, %v; want %q", round, i, st, err, want[i].st)
			}
			inv, err := snap.StepsInvolving(oid)
			if err != nil || len(inv) != len(want[i].hist) {
				t.Fatalf("round %d: StepsInvolving(%d) = %d steps, %v; want %d", round, i, len(inv), err, len(want[i].hist))
			}
		}
		if n, err := snap.CountMaterials("sample"); err != nil || n != wantMats {
			t.Fatalf("round %d: CountMaterials = %d, %v; want %d", round, n, err, wantMats)
		}
		if n, err := snap.CountSteps("measure"); err != nil || n != wantSteps {
			t.Fatalf("round %d: CountSteps = %d, %v; want %d", round, n, err, wantSteps)
		}
		if n, err := snap.CountInState("new"); err != nil || n != wantInState {
			t.Fatalf("round %d: CountInState(new) = %d, %v; want %d", round, n, err, wantInState)
		}
	}
	check(0)

	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineState("used"); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	const commits = 25
	var createdOID storage.OID
	for i := 0; i < commits; i++ {
		if err := db.Begin(); err != nil {
			t.Fatal(err)
		}
		if _, err := db.RecordStep(StepSpec{
			Class: "measure", ValidTime: int64(5000 + i),
			Materials: []storage.OID{oids[i%len(oids)]},
			Attrs:     []AttrValue{{Name: "reading", Value: Int64(int64(9000 + i))}},
		}); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if err := db.SetState(oids[0], "used"); err != nil {
				t.Fatal(err)
			}
		}
		name := fmt.Sprintf("post-capture-%d", i)
		oid, err := db.CreateMaterial("sample", name, "new", int64(7000+i))
		if err != nil {
			t.Fatal(err)
		}
		createdOID = oid
		if err := db.Commit(); err != nil {
			t.Fatal(err)
		}

		check(i + 1)
		// Post-capture materials must be invisible by name and by OID.
		if _, found := snap.LookupMaterial(name); found {
			t.Fatalf("round %d: snapshot resolves post-capture name %q", i, name)
		}
		if _, err := snap.GetMaterial(createdOID); !errors.Is(err, storage.ErrNoSuchObject) {
			t.Fatalf("round %d: GetMaterial(post-capture) err = %v, want ErrNoSuchObject", i, err)
		}
	}

	// A snapshot captured now sees everything the pinned one must not.
	fresh, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if n, err := fresh.CountMaterials("sample"); err != nil || n != wantMats+commits {
		t.Fatalf("fresh CountMaterials = %d, %v; want %d", n, err, wantMats+commits)
	}
	if st, err := fresh.State(oids[0]); err != nil || st != "used" {
		t.Fatalf("fresh State = %q, %v; want used", st, err)
	}
	check(commits + 1)

	// Releasing the old pin lets the next publish reclaim every pre-image.
	snap.Close()
	fresh.Close()
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateMaterial("sample", "after-release", "new", 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := db.vers.n.Load(); n != 0 {
		t.Fatalf("version table holds %d entries after all snapshots closed", n)
	}
}

// TestSnapshotNeverTornMidBatch races snapshot captures against a writer
// streaming PutSteps batches (run under -race). Writes are per-material
// monotone sequences, so any snapshot must satisfy two invariants no matter
// when it lands: the history is exactly the prefix 0..n-1 of the sequence,
// and the valid-time most-recent equals the last history entry — never a
// half-applied step where one structure has advanced and the other has not.
func TestSnapshotNeverTornMidBatch(t *testing.T) {
	db := openMem(t)
	oids := loadReadSet(t, db, 4, 0)

	const readers = 4
	const batches = 60
	const batchLen = 5
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				oid := oids[(r+i)%len(oids)]
				snapIface, err := db.Snapshot()
				if err != nil {
					errs <- err
					return
				}
				snap := snapIface.(*Snap)
				h, err := snap.History(oid)
				if err != nil {
					errs <- fmt.Errorf("reader %d: History: %w", r, err)
					snap.Close()
					return
				}
				for j, e := range h {
					if e.ValidTime != int64(j) {
						errs <- fmt.Errorf("reader %d: history[%d].ValidTime = %d; not the contiguous prefix", r, j, e.ValidTime)
						snap.Close()
						return
					}
				}
				v, _, found, err := snap.MostRecent(oid, "reading")
				if err != nil {
					errs <- fmt.Errorf("reader %d: MostRecent: %w", r, err)
					snap.Close()
					return
				}
				if found != (len(h) > 0) || (found && v.Int != int64(len(h)-1)) {
					errs <- fmt.Errorf("reader %d: torn state: most-recent %v (found=%v) vs %d history entries", r, v, found, len(h))
					snap.Close()
					return
				}
				inv, err := snap.StepsInvolving(oid)
				if err != nil || len(inv) != len(h) {
					errs <- fmt.Errorf("reader %d: involves index %d steps vs %d history entries: %w", r, len(inv), len(h), err)
					snap.Close()
					return
				}
				snap.Close()
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		next := make([]int64, len(oids))
		for b := 0; b < batches; b++ {
			m := b % len(oids)
			specs := make([]StepSpec, batchLen)
			for k := range specs {
				specs[k] = StepSpec{
					Class: "measure", ValidTime: next[m],
					Materials: []storage.OID{oids[m]},
					Attrs:     []AttrValue{{Name: "reading", Value: Int64(next[m])}},
				}
				next[m]++
			}
			if _, err := db.PutSteps(specs); err != nil {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestInvolvesIndexEquivalence checks the reverse involves index against
// ground truth computed the pre-index way — a linear scan of every step,
// expanding set targets into members — on a workload that exercises
// multi-material steps, set steps, and materials shared across steps.
func TestInvolvesIndexEquivalence(t *testing.T) {
	db := openMem(t)
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineMaterialClass("sample", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineState("new"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.DefineStepClass("measure", []AttrDef{{Name: "reading", Kind: KindInt}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.DefineStepClass("pool", nil); err != nil {
		t.Fatal(err)
	}
	const mats = 10
	oids := make([]storage.OID, mats)
	for i := range oids {
		oid, err := db.CreateMaterial("sample", fmt.Sprintf("m%d", i), "new", int64(i))
		if err != nil {
			t.Fatal(err)
		}
		oids[i] = oid
	}
	set, err := db.CreateMaterialSet(oids[2:6])
	if err != nil {
		t.Fatal(err)
	}
	// Single-material, multi-material, and set-target steps, interleaved so
	// per-material insertion orders cross step classes.
	for i := 0; i < 30; i++ {
		spec := StepSpec{Class: "measure", ValidTime: int64(i),
			Attrs: []AttrValue{{Name: "reading", Value: Int64(int64(i))}}}
		switch i % 3 {
		case 0:
			spec.Materials = []storage.OID{oids[i%mats]}
		case 1:
			spec.Materials = []storage.OID{oids[i%mats], oids[(i+3)%mats]}
		case 2:
			spec = StepSpec{Class: "pool", ValidTime: int64(i), Set: set}
		}
		if _, err := db.RecordStep(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}

	// Ground truth: scan every step of every class, expand sets.
	truth := make(map[storage.OID][]storage.OID)
	for _, class := range []string{"measure", "pool"} {
		if err := db.ScanSteps(class, func(st *Step) error {
			targets := append([]storage.OID(nil), st.Materials...)
			if !st.Set.IsNil() {
				members, err := db.SetMembers(st.Set)
				if err != nil {
					return err
				}
				targets = append(targets, members...)
			}
			for _, m := range targets {
				truth[m] = append(truth[m], st.OID)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	for i, oid := range oids {
		got, err := db.StepsInvolving(oid)
		if err != nil {
			t.Fatal(err)
		}
		// Multiset equivalence against the scan (the scan's cross-class
		// order is extent order, not insertion order).
		a := append([]storage.OID(nil), got...)
		b := append([]storage.OID(nil), truth[oid]...)
		sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
		sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
		if len(a) != len(b) {
			t.Fatalf("m%d: index has %d steps, scan %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("m%d: index %v != scan %v", i, got, truth[oid])
			}
		}
		// Exact-order equivalence against History's step projection: the
		// index must be the oldest-first audit trail, not just its members.
		h, err := db.History(oid)
		if err != nil {
			t.Fatal(err)
		}
		if len(h) != len(got) {
			t.Fatalf("m%d: index %d steps vs history %d", i, len(got), len(h))
		}
		for j := range h {
			if h[j].Step != got[j] {
				t.Fatalf("m%d: index order %v != history order", i, got)
			}
		}
	}
}
