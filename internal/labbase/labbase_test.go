package labbase

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"labflow/internal/storage"
	"labflow/internal/storage/memstore"
	"labflow/internal/storage/texas"
)

func openMem(t *testing.T) *DB {
	t.Helper()
	db, err := Open(memstore.Open("test-mm"), DefaultOptions())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func begin(t *testing.T, db *DB) {
	t.Helper()
	if err := db.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
}

func commit(t *testing.T, db *DB) {
	t.Helper()
	if err := db.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

// defineBasics installs a small genome-flavoured schema used across tests.
func defineBasics(t *testing.T, db *DB) {
	t.Helper()
	begin(t, db)
	mustDefine := func(name, parent string) {
		if _, err := db.DefineMaterialClass(name, parent); err != nil {
			t.Fatalf("DefineMaterialClass(%q): %v", name, err)
		}
	}
	mustDefine("material", "")
	mustDefine("clone", "material")
	mustDefine("tclone", "clone")
	for _, s := range []string{"waiting_for_prep", "waiting_for_sequencing", "waiting_for_incorporation", "done"} {
		if _, err := db.DefineState(s); err != nil {
			t.Fatalf("DefineState(%q): %v", s, err)
		}
	}
	if _, _, err := db.DefineStepClass("determine_sequence", []AttrDef{
		{Name: "sequence", Kind: KindString},
		{Name: "quality", Kind: KindFloat},
		{Name: "ok", Kind: KindBool},
	}); err != nil {
		t.Fatalf("DefineStepClass: %v", err)
	}
	commit(t, db)
}

func TestStorageSchemaMatchesPaperTable1(t *testing.T) {
	got := StorageSchema()
	want := []string{"sm_step", "sm_material", "material_set"}
	if len(got) != len(want) {
		t.Fatalf("StorageSchema = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StorageSchema[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCreateAndGetMaterial(t *testing.T) {
	db := openMem(t)
	defineBasics(t, db)
	begin(t, db)
	oid, err := db.CreateMaterial("clone", "c0001", "waiting_for_prep", 100)
	if err != nil {
		t.Fatalf("CreateMaterial: %v", err)
	}
	commit(t, db)

	m, err := db.GetMaterial(oid)
	if err != nil {
		t.Fatalf("GetMaterial: %v", err)
	}
	if m.Class != "clone" || m.Name != "c0001" || m.State != "waiting_for_prep" || m.CreatedAt != 100 || m.HistoryLen != 0 {
		t.Errorf("GetMaterial = %+v", m)
	}
	if st, err := db.State(oid); err != nil || st != "waiting_for_prep" {
		t.Errorf("State = %q, %v", st, err)
	}
	if _, err := db.GetMaterial(storage.MakeOID(storage.SegMaterial, 999)); err == nil {
		t.Error("GetMaterial of missing OID should fail")
	}
	if _, err := db.readMaterial(storage.MakeOID(storage.SegHistory, 1)); !errors.Is(err, ErrNotMaterial) {
		t.Errorf("non-material read = %v, want ErrNotMaterial", err)
	}

	begin(t, db)
	if _, err := db.CreateMaterial("nosuch", "x", "", 0); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("unknown class = %v", err)
	}
	if _, err := db.CreateMaterial("clone", "x", "nostate", 0); !errors.Is(err, ErrUnknownState) {
		t.Errorf("unknown state = %v", err)
	}
	commit(t, db)
}

func TestRecordStepAndMostRecent(t *testing.T) {
	db := openMem(t)
	defineBasics(t, db)
	begin(t, db)
	m, err := db.CreateMaterial("tclone", "t1", "waiting_for_sequencing", 1)
	if err != nil {
		t.Fatal(err)
	}
	step1, err := db.RecordStep(StepSpec{
		Class:     "determine_sequence",
		ValidTime: 10,
		Materials: []storage.OID{m},
		Attrs: []AttrValue{
			{Name: "sequence", Value: String("ACGT")},
			{Name: "quality", Value: Float64(0.91)},
			{Name: "ok", Value: Bool(true)},
		},
	})
	if err != nil {
		t.Fatalf("RecordStep: %v", err)
	}
	commit(t, db)

	v, src, ok, err := db.MostRecent(m, "sequence")
	if err != nil || !ok {
		t.Fatalf("MostRecent: ok=%v err=%v", ok, err)
	}
	if v.Str != "ACGT" || src != step1 {
		t.Errorf("MostRecent = %v from %v", v, src)
	}

	// A newer (by valid time) step supersedes.
	begin(t, db)
	step2, err := db.RecordStep(StepSpec{
		Class:     "determine_sequence",
		ValidTime: 20,
		Materials: []storage.OID{m},
		Attrs: []AttrValue{
			{Name: "sequence", Value: String("GGGG")},
			{Name: "quality", Value: Float64(0.99)},
			{Name: "ok", Value: Bool(true)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	commit(t, db)
	v, src, ok, _ = db.MostRecent(m, "sequence")
	if !ok || v.Str != "GGGG" || src != step2 {
		t.Errorf("MostRecent after newer step = %v from %v", v, src)
	}

	// An *older* step arriving late must NOT supersede: valid time, not
	// transaction time, is what counts.
	begin(t, db)
	if _, err := db.RecordStep(StepSpec{
		Class:     "determine_sequence",
		ValidTime: 15,
		Materials: []storage.OID{m},
		Attrs: []AttrValue{
			{Name: "sequence", Value: String("TTTT")},
			{Name: "quality", Value: Float64(0.5)},
			{Name: "ok", Value: Bool(false)},
		},
	}); err != nil {
		t.Fatal(err)
	}
	commit(t, db)
	v, src, ok, _ = db.MostRecent(m, "sequence")
	if !ok || v.Str != "GGGG" || src != step2 {
		t.Errorf("MostRecent after out-of-order insert = %v from %v, want GGGG from %v", v, src, step2)
	}

	// History is in insertion order and has all three events.
	hist, err := db.History(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("History len = %d, want 3", len(hist))
	}
	if hist[0].ValidTime != 10 || hist[1].ValidTime != 20 || hist[2].ValidTime != 15 {
		t.Errorf("History valid times = %v", hist)
	}
	if mm, _ := db.GetMaterial(m); mm.HistoryLen != 3 {
		t.Errorf("HistoryLen = %d, want 3", mm.HistoryLen)
	}

	// Unknown attribute: error. Unassigned attribute: ok=false.
	if _, _, _, err := db.MostRecent(m, "nonexistent"); !errors.Is(err, ErrUnknownAttr) {
		t.Errorf("unknown attr = %v", err)
	}
	begin(t, db)
	if _, err := db.DefineAttr("unassigned", KindInt); err != nil {
		t.Fatal(err)
	}
	commit(t, db)
	if _, _, ok, err := db.MostRecent(m, "unassigned"); err != nil || ok {
		t.Errorf("unassigned attr: ok=%v err=%v, want ok=false", ok, err)
	}
}

func TestMostRecentIndexMatchesScanOracle(t *testing.T) {
	db := openMem(t)
	defineBasics(t, db)
	begin(t, db)
	m, err := db.CreateMaterial("tclone", "t", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Record 300 steps with pseudo-random, colliding valid times across two
	// attributes, far past one history chunk.
	attrs := []string{"sequence", "quality"}
	for i := 0; i < 300; i++ {
		vt := int64((i * 7919) % 97) // many collisions, out of order
		a := attrs[i%2]
		var v Value
		if a == "sequence" {
			v = String(fmt.Sprintf("s%d", i))
		} else {
			v = Float64(float64(i))
		}
		if _, err := db.RecordStep(StepSpec{
			Class: "determine_sequence", ValidTime: vt,
			Materials: []storage.OID{m},
			Attrs:     []AttrValue{{Name: a, Value: v}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, db)

	for _, a := range attrs {
		iv, istep, iok, err := db.MostRecent(m, a)
		if err != nil {
			t.Fatal(err)
		}
		sv, sstep, sok, err := db.MostRecentScan(m, a)
		if err != nil {
			t.Fatal(err)
		}
		if iok != sok || !iv.Equal(sv) || istep != sstep {
			t.Errorf("attr %q: index (%v,%v,%v) != scan (%v,%v,%v)", a, iv, istep, iok, sv, sstep, sok)
		}
	}
}

func TestSchemaEvolutionByAttributeSet(t *testing.T) {
	db := openMem(t)
	defineBasics(t, db)
	begin(t, db)
	m, _ := db.CreateMaterial("clone", "c", "", 0)

	// Version 1 was defined in defineBasics. Record one instance.
	s1, err := db.RecordStep(StepSpec{
		Class: "determine_sequence", ValidTime: 1, Materials: []storage.OID{m},
		Attrs: []AttrValue{
			{Name: "sequence", Value: String("AC")},
			{Name: "quality", Value: Float64(1)},
			{Name: "ok", Value: Bool(true)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The workflow is re-engineered: the step now also reports read_length.
	// Recording with the new attribute set implicitly creates version 2.
	s2, err := db.RecordStep(StepSpec{
		Class: "determine_sequence", ValidTime: 2, Materials: []storage.OID{m},
		Attrs: []AttrValue{
			{Name: "sequence", Value: String("ACGT")},
			{Name: "quality", Value: Float64(1)},
			{Name: "ok", Value: Bool(true)},
			{Name: "read_length", Value: Int64(4)},
		},
	})
	if err != nil {
		t.Fatalf("evolved RecordStep: %v", err)
	}
	commit(t, db)

	st1, _ := db.GetStep(s1)
	st2, _ := db.GetStep(s2)
	if st1.Version != 1 {
		t.Errorf("old instance version = %d, want 1", st1.Version)
	}
	if st2.Version != 2 {
		t.Errorf("new instance version = %d, want 2", st2.Version)
	}
	// Old instances are untouched by evolution: no read_length.
	if _, ok := st1.Attr("read_length"); ok {
		t.Error("old instance gained the new attribute")
	}
	vers, err := db.StepClassVersions("determine_sequence")
	if err != nil {
		t.Fatal(err)
	}
	if len(vers) != 2 {
		t.Fatalf("versions = %d, want 2", len(vers))
	}
	if len(vers[0]) != 3 || len(vers[1]) != 4 {
		t.Errorf("version attr counts = %d, %d; want 3, 4", len(vers[0]), len(vers[1]))
	}

	// Re-recording with version 1's attribute set reuses version 1.
	begin(t, db)
	s3, err := db.RecordStep(StepSpec{
		Class: "determine_sequence", ValidTime: 3, Materials: []storage.OID{m},
		Attrs: []AttrValue{
			{Name: "ok", Value: Bool(false)},
			{Name: "sequence", Value: String("A")},
			{Name: "quality", Value: Float64(0)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	commit(t, db)
	if st3, _ := db.GetStep(s3); st3.Version != 1 {
		t.Errorf("attr-set match version = %d, want 1 (order must not matter)", st3.Version)
	}
}

func TestImplicitVersionsDisabled(t *testing.T) {
	sm := memstore.Open("t")
	db, err := Open(sm, Options{ImplicitVersions: false, ImplicitAttrs: false})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defineBasics(t, db)
	begin(t, db)
	m, _ := db.CreateMaterial("clone", "c", "", 0)
	_, err = db.RecordStep(StepSpec{
		Class: "determine_sequence", ValidTime: 1, Materials: []storage.OID{m},
		Attrs: []AttrValue{{Name: "sequence", Value: String("A")}},
	})
	if !errors.Is(err, ErrNoSuchVersion) {
		t.Errorf("unknown attr set = %v, want ErrNoSuchVersion", err)
	}
	_, err = db.RecordStep(StepSpec{
		Class: "determine_sequence", ValidTime: 1, Materials: []storage.OID{m},
		Attrs: []AttrValue{{Name: "brand_new", Value: String("A")}},
	})
	if !errors.Is(err, ErrUnknownAttr) {
		t.Errorf("unknown attr = %v, want ErrUnknownAttr", err)
	}
	commit(t, db)
}

func TestKindChecking(t *testing.T) {
	db := openMem(t)
	defineBasics(t, db)
	begin(t, db)
	m, _ := db.CreateMaterial("clone", "c", "", 0)
	_, err := db.RecordStep(StepSpec{
		Class: "determine_sequence", ValidTime: 1, Materials: []storage.OID{m},
		Attrs: []AttrValue{
			{Name: "sequence", Value: Int64(42)}, // declared KindString
			{Name: "quality", Value: Float64(1)},
			{Name: "ok", Value: Bool(true)},
		},
	})
	if !errors.Is(err, ErrKindMismatch) {
		t.Errorf("kind mismatch = %v, want ErrKindMismatch", err)
	}
	if _, err := db.DefineAttr("quality", KindString); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("conflicting redefine = %v, want ErrKindMismatch", err)
	}
	commit(t, db)
}

func TestStatesAndCounts(t *testing.T) {
	db := openMem(t)
	defineBasics(t, db)
	begin(t, db)
	var clones []storage.OID
	for i := 0; i < 10; i++ {
		oid, err := db.CreateMaterial("clone", fmt.Sprintf("c%d", i), "waiting_for_prep", int64(i))
		if err != nil {
			t.Fatal(err)
		}
		clones = append(clones, oid)
	}
	for i := 0; i < 4; i++ {
		if _, err := db.CreateMaterial("tclone", fmt.Sprintf("t%d", i), "waiting_for_sequencing", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, db)

	if n, _ := db.CountMaterials("clone"); n != 14 { // includes tclone subclass
		t.Errorf("CountMaterials(clone) = %d, want 14", n)
	}
	if n, _ := db.CountMaterials("tclone"); n != 4 {
		t.Errorf("CountMaterials(tclone) = %d, want 4", n)
	}
	if n, _ := db.CountMaterials("material"); n != 14 {
		t.Errorf("CountMaterials(material) = %d, want 14", n)
	}
	if n, _ := db.CountInState("waiting_for_prep"); n != 10 {
		t.Errorf("CountInState = %d, want 10", n)
	}

	begin(t, db)
	if err := db.SetState(clones[0], "done"); err != nil {
		t.Fatal(err)
	}
	commit(t, db)
	if n, _ := db.CountInState("waiting_for_prep"); n != 9 {
		t.Errorf("after SetState CountInState = %d, want 9", n)
	}
	if n, _ := db.CountInState("done"); n != 1 {
		t.Errorf("CountInState(done) = %d, want 1", n)
	}
	ms, err := db.MaterialsInState("done")
	if err != nil || len(ms) != 1 || ms[0] != clones[0] {
		t.Errorf("MaterialsInState(done) = %v, %v", ms, err)
	}

	// Scans: subclass-inclusive.
	var scanned int
	if err := db.ScanMaterials("clone", func(m *Material) error { scanned++; return nil }); err != nil {
		t.Fatal(err)
	}
	if scanned != 14 {
		t.Errorf("ScanMaterials visited %d, want 14", scanned)
	}
	if _, err := db.CountMaterials("nosuch"); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("CountMaterials unknown = %v", err)
	}
	if _, err := db.CountInState("nosuch"); !errors.Is(err, ErrUnknownState) {
		t.Errorf("CountInState unknown = %v", err)
	}
}

func TestMaterialSetsAndBatchSteps(t *testing.T) {
	db := openMem(t)
	defineBasics(t, db)
	begin(t, db)
	var members []storage.OID
	for i := 0; i < 5; i++ {
		oid, err := db.CreateMaterial("tclone", fmt.Sprintf("t%d", i), "", 0)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, oid)
	}
	set, err := db.CreateMaterialSet(members)
	if err != nil {
		t.Fatalf("CreateMaterialSet: %v", err)
	}
	got, err := db.SetMembers(set)
	if err != nil || len(got) != 5 {
		t.Fatalf("SetMembers = %v, %v", got, err)
	}

	// One batched gel-run step touches every member's history.
	step, err := db.RecordStep(StepSpec{
		Class: "determine_sequence", ValidTime: 50, Set: set,
		Attrs: []AttrValue{
			{Name: "sequence", Value: String("BATCH")},
			{Name: "quality", Value: Float64(0.8)},
			{Name: "ok", Value: Bool(true)},
		},
	})
	if err != nil {
		t.Fatalf("batch RecordStep: %v", err)
	}
	commit(t, db)

	for _, m := range members {
		hist, err := db.History(m)
		if err != nil || len(hist) != 1 || hist[0].Step != step {
			t.Fatalf("member %v history = %v, %v", m, hist, err)
		}
		v, _, ok, err := db.MostRecent(m, "sequence")
		if err != nil || !ok || v.Str != "BATCH" {
			t.Fatalf("member %v MostRecent = %v, %v, %v", m, v, ok, err)
		}
	}
	// One step instance, counted once.
	if n, _ := db.CountSteps("determine_sequence"); n != 1 {
		t.Errorf("CountSteps = %d, want 1", n)
	}
	st, err := db.GetStep(step)
	if err != nil || st.Set != set {
		t.Errorf("GetStep.Set = %v, %v", st, err)
	}

	begin(t, db)
	if _, err := db.CreateMaterialSet([]storage.OID{storage.MakeOID(storage.SegMaterial, 9999)}); err == nil {
		t.Error("set over missing material should fail")
	}
	if _, err := db.RecordStep(StepSpec{Class: "determine_sequence", ValidTime: 1}); err == nil {
		t.Error("step with no materials should fail")
	}
	commit(t, db)
}

func TestDump(t *testing.T) {
	db := openMem(t)
	defineBasics(t, db)
	begin(t, db)
	var mats []storage.OID
	for i := 0; i < 6; i++ {
		oid, _ := db.CreateMaterial("clone", fmt.Sprintf("c%d", i), "", 0)
		mats = append(mats, oid)
	}
	for i := 0; i < 20; i++ {
		if _, err := db.RecordStep(StepSpec{
			Class: "determine_sequence", ValidTime: int64(i),
			Materials: []storage.OID{mats[i%len(mats)]},
			Attrs: []AttrValue{
				{Name: "sequence", Value: String("ACGT")},
				{Name: "quality", Value: Float64(1)},
				{Name: "ok", Value: Bool(true)},
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, db)
	st, err := db.Dump()
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	if st.Materials != 6 || st.Steps != 20 || st.AttrValues != 60 || st.HistoryRead != 20 {
		t.Errorf("Dump = %+v", st)
	}
}

// TestPersistenceAcrossReopen exercises the full wrapper against a real
// persistent store: schema, materials, histories, counters and the state
// index must all survive close/reopen.
func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lab.db")
	sm, err := texas.Open(texas.Options{Path: path, Clustering: true})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(sm, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defineBasics(t, db)
	begin(t, db)
	m, err := db.CreateMaterial("tclone", "t-persist", "waiting_for_sequencing", 5)
	if err != nil {
		t.Fatal(err)
	}
	var lastStep storage.OID
	for i := 0; i < 130; i++ { // cross a chunk boundary
		lastStep, err = db.RecordStep(StepSpec{
			Class: "determine_sequence", ValidTime: int64(i),
			Materials: []storage.OID{m},
			Attrs: []AttrValue{
				{Name: "sequence", Value: String(fmt.Sprintf("seq-%d", i))},
				{Name: "quality", Value: Float64(float64(i))},
				{Name: "ok", Value: Bool(i%2 == 0)},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	commit(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	sm2, err := texas.Open(texas.Options{Path: path, Clustering: true})
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(sm2, DefaultOptions())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()

	got, err := db2.GetMaterial(m)
	if err != nil || got.Name != "t-persist" || got.State != "waiting_for_sequencing" || got.HistoryLen != 130 {
		t.Fatalf("reopened material = %+v, %v", got, err)
	}
	v, src, ok, err := db2.MostRecent(m, "sequence")
	if err != nil || !ok || v.Str != "seq-129" || src != lastStep {
		t.Fatalf("reopened MostRecent = %v, %v, %v, %v", v, src, ok, err)
	}
	hist, err := db2.History(m)
	if err != nil || len(hist) != 130 {
		t.Fatalf("reopened History len = %d, %v", len(hist), err)
	}
	for i, h := range hist {
		if h.ValidTime != int64(i) {
			t.Fatalf("history[%d].ValidTime = %d", i, h.ValidTime)
		}
	}
	if n, _ := db2.CountSteps("determine_sequence"); n != 130 {
		t.Errorf("reopened CountSteps = %d, want 130", n)
	}
	// The in-memory state index was rebuilt from the materials.
	ms, err := db2.MaterialsInState("waiting_for_sequencing")
	if err != nil || len(ms) != 1 || ms[0] != m {
		t.Errorf("reopened MaterialsInState = %v, %v", ms, err)
	}
	// Schema survived: version count still 1, 4 states, 3 classes.
	if vers, _ := db2.StepClassVersions("determine_sequence"); len(vers) != 1 {
		t.Errorf("reopened versions = %d, want 1", len(vers))
	}
	if got := db2.States(); len(got) != 4 {
		t.Errorf("reopened states = %v", got)
	}
	if got := db2.MaterialClasses(); len(got) != 3 {
		t.Errorf("reopened classes = %v", got)
	}
	// And evolution continues from where it was.
	begin(t, db2)
	s, err := db2.RecordStep(StepSpec{
		Class: "determine_sequence", ValidTime: 999, Materials: []storage.OID{m},
		Attrs: []AttrValue{{Name: "sequence", Value: String("post-reopen")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	commit(t, db2)
	if st, _ := db2.GetStep(s); st.Version != 2 {
		t.Errorf("post-reopen evolved version = %d, want 2", st.Version)
	}
}

func TestNameIndex(t *testing.T) {
	db := openMem(t)
	defineBasics(t, db)
	begin(t, db)
	c1, err := db.CreateMaterial("clone", "c-alpha", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateMaterial("clone", "", "", 1); err != nil {
		t.Fatalf("anonymous material: %v", err)
	}
	if _, err := db.CreateMaterial("clone", "", "", 1); err != nil {
		t.Fatalf("second anonymous material: %v", err)
	}
	// Duplicate names are rejected: the name is the key.
	if _, err := db.CreateMaterial("tclone", "c-alpha", "", 2); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("duplicate name = %v, want ErrDuplicateName", err)
	}
	commit(t, db)

	oid, ok := db.LookupMaterial("c-alpha")
	if !ok || oid != c1 {
		t.Fatalf("LookupMaterial = %v, %v", oid, ok)
	}
	if _, ok := db.LookupMaterial("nonexistent"); ok {
		t.Error("lookup of unknown name should miss")
	}
	if _, ok := db.LookupMaterial(""); ok {
		t.Error("empty name should not be indexed")
	}
}

func TestNameIndexSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "names.db")
	sm, err := texas.Open(texas.Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(sm, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defineBasics(t, db)
	begin(t, db)
	want, err := db.CreateMaterial("clone", "persistent-name", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	commit(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	sm2, err := texas.Open(texas.Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(sm2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	oid, ok := db2.LookupMaterial("persistent-name")
	if !ok || oid != want {
		t.Fatalf("after reopen LookupMaterial = %v, %v; want %v", oid, ok, want)
	}
	// And uniqueness still holds against the rebuilt index.
	begin(t, db2)
	if _, err := db2.CreateMaterial("clone", "persistent-name", "", 2); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("duplicate after reopen = %v", err)
	}
	commit(t, db2)
}

func TestMutationsRequireTxn(t *testing.T) {
	db := openMem(t)
	defineBasics(t, db)
	if _, err := db.CreateMaterial("clone", "x", "", 0); !errors.Is(err, ErrNoTransaction) {
		t.Errorf("CreateMaterial outside txn = %v", err)
	}
	if _, err := db.DefineState("s"); !errors.Is(err, ErrNoTransaction) {
		t.Errorf("DefineState outside txn = %v", err)
	}
	if err := db.Commit(); !errors.Is(err, ErrNoTransaction) {
		t.Errorf("Commit outside txn = %v", err)
	}
}

func TestMultiMaterialStep(t *testing.T) {
	db := openMem(t)
	defineBasics(t, db)
	begin(t, db)
	a, _ := db.CreateMaterial("clone", "a", "", 0)
	b, _ := db.CreateMaterial("tclone", "b", "", 0)
	step, err := db.RecordStep(StepSpec{
		Class: "determine_sequence", ValidTime: 7,
		Materials: []storage.OID{a, b},
		Attrs:     []AttrValue{{Name: "sequence", Value: String("SHARED")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	commit(t, db)
	for _, m := range []storage.OID{a, b} {
		v, src, ok, err := db.MostRecent(m, "sequence")
		if err != nil || !ok || v.Str != "SHARED" || src != step {
			t.Errorf("material %v: MostRecent = %v, %v, %v, %v", m, v, src, ok, err)
		}
	}
	st, _ := db.GetStep(step)
	if len(st.Materials) != 2 {
		t.Errorf("step materials = %v", st.Materials)
	}
}
