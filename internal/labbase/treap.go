package labbase

import (
	"cmp"

	"labflow/internal/storage"
)

// Persistent (path-copying) treaps back the in-memory access structures
// that snapshots share: the per-state material sets, the material name
// index, and the reverse involves index. An update copies only the O(log n)
// nodes on the root-to-key path; every other node is shared with older
// snapshots, so publishing a new database snapshot per write costs log-time
// and log-space instead of cloning whole maps.
//
// Nodes are immutable once they are reachable from a published snapshot:
// the writer builds new paths, swaps the root into the next snapshot, and
// never touches old nodes again. Readers therefore traverse without any
// synchronization.
//
// Priorities are derived deterministically from the key (no math/rand —
// the detrand analyzer forbids unseeded randomness, and identical runs
// must build identical trees so benchmark numbers stay reproducible).
type treapNode[K cmp.Ordered, V any] struct {
	key         K
	pri         uint64
	val         V
	left, right *treapNode[K, V]
}

// treapGet returns the value stored under key.
func treapGet[K cmp.Ordered, V any](n *treapNode[K, V], key K) (V, bool) {
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// treapPut returns the root of a treap equal to n with key bound to val,
// sharing all untouched nodes with n. pri must be the key's deterministic
// priority (oidPri/namePri).
func treapPut[K cmp.Ordered, V any](n *treapNode[K, V], key K, pri uint64, val V) *treapNode[K, V] {
	if n == nil {
		return &treapNode[K, V]{key: key, pri: pri, val: val}
	}
	c := *n
	switch {
	case key < n.key:
		c.left = treapPut(c.left, key, pri, val)
		if c.left.pri > c.pri {
			return treapRotateRight(&c)
		}
	case key > n.key:
		c.right = treapPut(c.right, key, pri, val)
		if c.right.pri > c.pri {
			return treapRotateLeft(&c)
		}
	default:
		c.val = val
	}
	return &c
}

// treapRotateRight lifts n's left child above n. n is the caller's private
// copy (never snapshot-reachable), so mutating it is safe; the lifted child
// is copied because it may be shared with an older snapshot.
func treapRotateRight[K cmp.Ordered, V any](n *treapNode[K, V]) *treapNode[K, V] {
	l := *n.left
	n.left = l.right
	l.right = n
	return &l
}

// treapRotateLeft is the mirror image of treapRotateRight.
func treapRotateLeft[K cmp.Ordered, V any](n *treapNode[K, V]) *treapNode[K, V] {
	r := *n.right
	n.right = r.left
	r.left = n
	return &r
}

// treapDelete returns the root of a treap equal to n without key.
func treapDelete[K cmp.Ordered, V any](n *treapNode[K, V], key K) *treapNode[K, V] {
	if n == nil {
		return nil
	}
	c := *n
	switch {
	case key < n.key:
		c.left = treapDelete(c.left, key)
		return &c
	case key > n.key:
		c.right = treapDelete(c.right, key)
		return &c
	}
	return treapMerge(c.left, c.right)
}

// treapMerge joins two treaps where every key in a precedes every key in b.
func treapMerge[K cmp.Ordered, V any](a, b *treapNode[K, V]) *treapNode[K, V] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.pri > b.pri {
		c := *a
		c.right = treapMerge(c.right, b)
		return &c
	}
	c := *b
	c.left = treapMerge(a, c.left)
	return &c
}

// treapAscend calls fn for every (key, value) pair in ascending key order.
func treapAscend[K cmp.Ordered, V any](n *treapNode[K, V], fn func(K, V) error) error {
	if n == nil {
		return nil
	}
	if err := treapAscend(n.left, fn); err != nil {
		return err
	}
	if err := fn(n.key, n.val); err != nil {
		return err
	}
	return treapAscend(n.right, fn)
}

// oidPri is the deterministic treap priority for an OID key (splitmix64's
// output mix — avalanching, so sequential OIDs still build balanced trees).
func oidPri(oid uint64) uint64 {
	x := oid + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// namePri is the deterministic treap priority for a string key (FNV-1a).
func namePri(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}

// invList is a persistent cons list of step OIDs, newest first — the value
// type of the reverse involves index. Structural sharing makes the per-step
// update O(1): recording a step prepends one node per involved material.
type invList struct {
	step storage.OID
	next *invList
	n    int // length including this node
}

// length is the nil-safe list length.
func (l *invList) length() int {
	if l == nil {
		return 0
	}
	return l.n
}

// invSteps materializes the list oldest-first, matching history order.
func (l *invList) invSteps() []storage.OID {
	if l == nil {
		return nil
	}
	out := make([]storage.OID, l.n)
	for i := l.n - 1; l != nil; i, l = i-1, l.next {
		out[i] = l.step
	}
	return out
}
