package labbase

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"labflow/internal/storage"
	"labflow/internal/storage/memstore"
)

func TestOIDCacheLRU(t *testing.T) {
	c := newOIDCache[int](2)
	oid := func(i int) storage.OID { return storage.OID(i) }

	if _, ok := c.get(oid(1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.put(oid(1), 10)
	c.put(oid(2), 20)
	if v, ok := c.get(oid(1)); !ok || v != 10 {
		t.Fatalf("get(1) = %v, %v; want 10, true", v, ok)
	}
	// 1 is now MRU; inserting 3 must evict 2 (LRU), not 1.
	c.put(oid(3), 30)
	if _, ok := c.get(oid(2)); ok {
		t.Fatal("LRU entry 2 not evicted")
	}
	if v, ok := c.get(oid(1)); !ok || v != 10 {
		t.Fatalf("entry 1 evicted out of LRU order (got %v, %v)", v, ok)
	}
	if v, ok := c.get(oid(3)); !ok || v != 30 {
		t.Fatalf("get(3) = %v, %v; want 30, true", v, ok)
	}

	// put on an existing key refreshes value and recency, never grows.
	c.put(oid(1), 11)
	if v, _ := c.get(oid(1)); v != 11 {
		t.Fatalf("refresh failed: got %v, want 11", v)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}

	c.invalidate(oid(1))
	if _, ok := c.get(oid(1)); ok {
		t.Fatal("invalidated entry still cached")
	}
	c.invalidate(oid(999)) // absent key: no-op
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}

	// Single-entry edge cases around head/tail maintenance.
	c.invalidate(oid(3))
	c.put(oid(7), 70)
	c.put(oid(8), 80)
	c.put(oid(9), 90) // evicts 7
	if _, ok := c.get(oid(7)); ok {
		t.Fatal("entry 7 should have been evicted")
	}
}

func TestOIDCacheNil(t *testing.T) {
	var c *oidCache[string]
	if c := newOIDCache[string](0); c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	// All operations on a nil cache are safe no-ops.
	c.put(storage.OID(1), "x")
	if _, ok := c.get(storage.OID(1)); ok {
		t.Fatal("nil cache reported a hit")
	}
	c.invalidate(storage.OID(1))
	if c.len() != 0 {
		t.Fatal("nil cache len != 0")
	}
}

// TestCacheEquivalence drives two databases — caches on vs. caches off —
// through an identical seeded workload and checks that every query answer
// matches, and matches the MostRecentScan oracle. Cache hits must change
// only how answers are produced, never the answers.
func TestCacheEquivalence(t *testing.T) {
	openWith := func(entries int) *DB {
		db, err := Open(memstore.Open("cache-eq"), Options{
			ImplicitVersions: true,
			ImplicitAttrs:    true,
			CacheEntries:     entries,
		})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		t.Cleanup(func() { db.Close() })
		return db
	}
	// Tiny cache so the workload forces plenty of evictions.
	cached, plain := openWith(8), openWith(0)
	dbs := []*DB{cached, plain}

	var mats [][]storage.OID // mats[d][i]: i-th material in db d
	for _, db := range dbs {
		begin(t, db)
		if _, err := db.DefineMaterialClass("material", ""); err != nil {
			t.Fatal(err)
		}
		if _, err := db.DefineMaterialClass("clone", "material"); err != nil {
			t.Fatal(err)
		}
		for _, s := range []string{"prep", "seq", "done"} {
			if _, err := db.DefineState(s); err != nil {
				t.Fatal(err)
			}
		}
		commit(t, db)
	}

	const nMats = 40
	const nSteps = 300
	states := []string{"prep", "seq", "done"}
	attrs := []string{"sequence", "quality", "length", "ok"}

	// Both DBs see the exact same operation stream: one RNG decides, both
	// replay. Valid times are drawn randomly so out-of-order arrivals
	// exercise the most-recent index's temporal tie-breaking.
	rng := rand.New(rand.NewSource(42))
	mats = make([][]storage.OID, 2)
	for d, db := range dbs {
		begin(t, db)
		for i := 0; i < nMats; i++ {
			oid, err := db.CreateMaterial("clone", fmt.Sprintf("m%d", i), "prep", int64(i))
			if err != nil {
				t.Fatalf("CreateMaterial: %v", err)
			}
			mats[d] = append(mats[d], oid)
		}
		commit(t, db)
	}

	for s := 0; s < nSteps; s++ {
		mi := rng.Intn(nMats)
		vt := int64(rng.Intn(1000))
		ai := rng.Intn(len(attrs))
		val := rng.Intn(100)
		si := rng.Intn(len(states))
		batch := rng.Intn(10) == 0
		var extra int
		if batch {
			extra = rng.Intn(nMats)
		}
		for d, db := range dbs {
			begin(t, db)
			targets := []storage.OID{mats[d][mi]}
			if batch && extra != mi {
				targets = append(targets, mats[d][extra])
			}
			spec := StepSpec{
				Class:     "assay",
				ValidTime: vt,
				Materials: targets,
				Attrs: []AttrValue{
					{Name: attrs[ai], Value: Int64(int64(val))},
				},
			}
			if _, err := db.RecordStep(spec); err != nil {
				t.Fatalf("RecordStep: %v", err)
			}
			if err := db.SetState(mats[d][mi], states[si]); err != nil {
				t.Fatalf("SetState: %v", err)
			}
			commit(t, db)
		}

		// Every 25 steps, cross-check a sample of query answers.
		if s%25 != 24 {
			continue
		}
		for probe := 0; probe < 8; probe++ {
			m := rng.Intn(nMats)
			a := attrs[rng.Intn(len(attrs))]
			v0, s0, ok0, err := cached.MostRecent(mats[0][m], a)
			if err != nil {
				t.Fatalf("cached MostRecent: %v", err)
			}
			v1, s1, ok1, err := plain.MostRecent(mats[1][m], a)
			if err != nil {
				t.Fatalf("plain MostRecent: %v", err)
			}
			if ok0 != ok1 || !reflect.DeepEqual(v0, v1) || s0 != s1 {
				t.Fatalf("step %d: MostRecent(%d, %q) diverged: cached=(%v,%v,%v) plain=(%v,%v,%v)",
					s, m, a, v0, s0, ok0, v1, s1, ok1)
			}
			// And both must agree with the full-scan oracle.
			vo, so, oko, err := cached.MostRecentScan(mats[0][m], a)
			if err != nil {
				t.Fatalf("MostRecentScan: %v", err)
			}
			if ok0 != oko || !reflect.DeepEqual(v0, vo) || s0 != so {
				t.Fatalf("step %d: cached MostRecent(%d, %q)=(%v,%v,%v) disagrees with scan oracle (%v,%v,%v)",
					s, m, a, v0, s0, ok0, vo, so, oko)
			}
			st0, err := cached.State(mats[0][m])
			if err != nil {
				t.Fatal(err)
			}
			st1, err := plain.State(mats[1][m])
			if err != nil {
				t.Fatal(err)
			}
			if st0 != st1 {
				t.Fatalf("state diverged for material %d: %q vs %q", m, st0, st1)
			}
			g0, err := cached.GetMaterial(mats[0][m])
			if err != nil {
				t.Fatal(err)
			}
			g1, err := plain.GetMaterial(mats[1][m])
			if err != nil {
				t.Fatal(err)
			}
			if *g0 != *g1 {
				t.Fatalf("GetMaterial diverged for material %d: %+v vs %+v", m, *g0, *g1)
			}
		}
	}

	// Final sweep: every material, every attribute, against the oracle.
	for m := 0; m < nMats; m++ {
		for _, a := range attrs {
			v0, s0, ok0, err := cached.MostRecent(mats[0][m], a)
			if err != nil {
				t.Fatal(err)
			}
			vo, so, oko, err := cached.MostRecentScan(mats[0][m], a)
			if err != nil {
				t.Fatal(err)
			}
			if ok0 != oko || !reflect.DeepEqual(v0, vo) || s0 != so {
				t.Fatalf("final: MostRecent(%d, %q) disagrees with oracle", m, a)
			}
			v1, s1, ok1, err := plain.MostRecent(mats[1][m], a)
			if err != nil {
				t.Fatal(err)
			}
			if ok0 != ok1 || !reflect.DeepEqual(v0, v1) || s0 != s1 {
				t.Fatalf("final: cached/plain divergence at material %d attr %q", m, a)
			}
		}
	}
}

// TestCacheSurvivesReopen ensures cached state is purely in-memory: a fresh
// DB over the same storage sees everything the cached writes produced.
func TestCacheSurvivesReopen(t *testing.T) {
	sm := memstore.Open("cache-reopen")
	db, err := Open(sm, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	begin(t, db)
	if _, err := db.DefineMaterialClass("material", ""); err != nil {
		t.Fatal(err)
	}
	oid, err := db.CreateMaterial("material", "x", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	commit(t, db)
	begin(t, db)
	if _, err := db.RecordStep(StepSpec{
		Class: "weigh", ValidTime: 5, Materials: []storage.OID{oid},
		Attrs: []AttrValue{{Name: "mass", Value: Float64(1.5)}},
	}); err != nil {
		t.Fatal(err)
	}
	commit(t, db)

	// A second DB over the same storage starts with cold caches; it must see
	// everything the first DB's cached write paths persisted.
	db2, err := Open(sm, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, _, ok, err := db2.MostRecent(oid, "mass")
	if err != nil || !ok || !reflect.DeepEqual(v, Float64(1.5)) {
		t.Fatalf("reopened MostRecent = %v, %v, %v", v, ok, err)
	}
}
