package labbase

import (
	"fmt"

	"labflow/internal/rec"
	"labflow/internal/storage"
)

// AttrValue is one named attribute value on a step.
type AttrValue struct {
	Name  string
	Value Value
}

// StepSpec describes a workflow step to record. The step's result attributes
// determine (and, under Options.ImplicitVersions, may create) the step-class
// version the instance is bound to.
type StepSpec struct {
	// Class is the step class name (must be defined, or definable through
	// DefineStepClass beforehand).
	Class string
	// ValidTime is the lab time the step happened. Steps may be recorded
	// out of order; most-recent semantics follow this field, not insertion
	// order.
	ValidTime int64
	// Materials are the individual materials the step processed.
	Materials []storage.OID
	// Set optionally names a material_set; its members are processed too
	// (batched steps such as gel runs).
	Set storage.OID
	// Attrs are the step's result attributes, in recording order.
	Attrs []AttrValue
}

// Step is the public view of an sm_step record.
type Step struct {
	OID       storage.OID
	Class     string
	Version   Version
	ValidTime int64
	TxnTime   int64
	Materials []storage.OID
	Set       storage.OID
	Attrs     []AttrValue
}

// RecordStep inserts a workflow event: the core update of the benchmark's
// workflow tracking. It appends the step to the event history of every
// material it involves and maintains their most-recent indexes.
//
// Placement mirrors the LabBase clustering policy: the step record and the
// history chunks that point at it are allocated near the involved material's
// existing history, so one material's audit trail stays physically together
// when the storage manager honours clustering (Texas+TC, OStore).
func (db *DB) RecordStep(spec StepSpec) (storage.OID, error) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	defer db.publishIfDirty()
	return db.recordStepLocked(spec)
}

func (db *DB) recordStepLocked(spec StepSpec) (storage.OID, error) {
	if err := db.requireTxn(); err != nil {
		return storage.NilOID, err
	}
	sc, ok := db.cat.bySCName[spec.Class]
	if !ok {
		// Under implicit evolution, recording a step of an unseen class
		// defines the class (its first version comes from the attribute
		// set below) — schema evolution by use.
		if !db.opts.ImplicitVersions {
			return storage.NilOID, fmt.Errorf("%w: step class %q", ErrUnknownClass, spec.Class)
		}
		if spec.Class == "" {
			return storage.NilOID, fmt.Errorf("labbase: empty step class name")
		}
		sc = &StepClass{
			ID:        StepClassID(len(db.cat.stepClasses) + 1),
			Name:      spec.Class,
			byAttrKey: make(map[string]Version),
		}
		db.cat.stepClasses = append(db.cat.stepClasses, sc)
		db.cat.bySCName[spec.Class] = sc
		db.markCat()
		db.cnt.growTo(len(db.cat.materialClasses), len(db.cat.stepClasses), len(db.cat.states))
		db.markCnt()
	}

	// Resolve attributes, defining unknown ones when allowed.
	attrIDs := make([]AttrID, len(spec.Attrs))
	attrVals := make([]Value, len(spec.Attrs))
	for i, av := range spec.Attrs {
		id, ok := db.cat.byAttrName[av.Name]
		if !ok {
			if !db.opts.ImplicitAttrs {
				return storage.NilOID, fmt.Errorf("%w: %q", ErrUnknownAttr, av.Name)
			}
			var err error
			id, err = db.defineAttrLocked(av.Name, KindAny)
			if err != nil {
				return storage.NilOID, err
			}
		}
		def := db.cat.attrs[id-1]
		if !av.Value.matches(def.Kind) {
			return storage.NilOID, fmt.Errorf("%w: attribute %q takes %v, got %v",
				ErrKindMismatch, av.Name, def.Kind, av.Value.Kind)
		}
		attrIDs[i] = id
		attrVals[i] = av.Value
	}

	// Resolve the step-class version by attribute set (schema evolution).
	key := attrKey(attrIDs)
	ver, ok := sc.byAttrKey[key]
	if !ok {
		if !db.opts.ImplicitVersions {
			return storage.NilOID, fmt.Errorf("%w: class %q, attrs %v", ErrNoSuchVersion, spec.Class, key)
		}
		var err error
		ver, err = db.stepVersionLocked(sc, attrIDs)
		if err != nil {
			return storage.NilOID, err
		}
	}

	// Collect the involved materials: explicit ones plus set members.
	targets := make([]storage.OID, 0, len(spec.Materials))
	targets = append(targets, spec.Materials...)
	if !spec.Set.IsNil() {
		members, err := db.setMembersLocked(spec.Set)
		if err != nil {
			return storage.NilOID, fmt.Errorf("labbase: step set: %w", err)
		}
		targets = append(targets, members...)
	}
	if len(targets) == 0 {
		return storage.NilOID, fmt.Errorf("labbase: step %q involves no materials", spec.Class)
	}
	mats := make([]*materialRec, len(targets))
	for i, m := range targets {
		mr, err := db.readMaterial(m)
		if err != nil {
			return storage.NilOID, fmt.Errorf("labbase: step material %v: %w", m, err)
		}
		mats[i] = mr
		// Save the pre-image before any mutation below rewrites the record;
		// the version table keeps the first save per epoch, so a duplicate
		// target (or a target also touched earlier in this epoch) is fine.
		pre := *mr
		db.vers.save(m, db.wEpoch, &pre)
	}

	// Store the step record near the first material's existing history.
	s := &stepRec{
		classID:   sc.ID,
		version:   ver,
		validTime: spec.ValidTime,
		txnTime:   db.nextTxnTime(),
		materials: spec.Materials,
		set:       spec.Set,
		attrIDs:   attrIDs,
		attrVals:  attrVals,
	}
	enc := rec.GetEncoder()
	s.encodeTo(enc)
	var stepOID storage.OID
	var err error
	if anchor := mats[0].historyHead; !anchor.IsNil() {
		stepOID, err = db.sm.AllocateNear(anchor, enc.Bytes())
	} else {
		// A history-less first material starts a fresh physical cluster;
		// the whole family's audit trail (its spawned materials anchor
		// their first chunks here too) then funnels into it.
		stepOID, err = db.sm.AllocateCluster(storage.SegHistory, enc.Bytes())
	}
	rec.PutEncoder(enc)
	if err != nil {
		return storage.NilOID, fmt.Errorf("labbase: store step: %w", err)
	}

	// Thread the step into each material's history, most-recent index and
	// the reverse involves index.
	entry := historyEntry{step: stepOID, validTime: spec.ValidTime}
	for i, moid := range targets {
		if err := db.appendHistory(moid, mats[i], entry); err != nil {
			return storage.NilOID, err
		}
		if err := db.updateMostRecent(moid, mats[i], attrIDs, entry); err != nil {
			return storage.NilOID, err
		}
		mats[i].historyCount++
		if err := db.writeMaterial(moid, mats[i]); err != nil {
			return storage.NilOID, fmt.Errorf("labbase: update material %v: %w", moid, err)
		}
		old, _ := treapGet(db.invRoot, uint64(moid))
		db.invRoot = treapPut(db.invRoot, uint64(moid), oidPri(uint64(moid)),
			&invList{step: stepOID, next: old, n: old.length() + 1})
	}

	changed, err := db.appendToExtent(&sc.extentHead, stepOID)
	if err != nil {
		return storage.NilOID, err
	}
	if changed {
		db.markCat()
	}
	db.cnt.stepsByClass[sc.ID-1]++
	db.markCnt()
	return stepOID, nil
}

// PutSteps records a batch of steps. Called outside a transaction it opens
// one of its own, amortizing the commit (and, under group-commit stores, the
// log flush) across the batch; inside a caller's transaction it records into
// that. The batch is not atomic: if entry i fails, entries 0..i-1 have
// already been recorded and stay recorded — the error names the failing
// index so the caller can tell.
func (db *DB) PutSteps(specs []StepSpec) ([]storage.OID, error) {
	oids := make([]storage.OID, len(specs))
	own := !db.InTxn()
	if own {
		if err := db.Begin(); err != nil {
			return nil, err
		}
	}
	for i, spec := range specs {
		oid, err := db.RecordStep(spec)
		if err != nil {
			err = error(&BatchError{Index: i, Err: err})
			if own {
				if cerr := db.Commit(); cerr != nil {
					return nil, fmt.Errorf("%w (and closing the transaction: %w)", err, cerr)
				}
			}
			return nil, err
		}
		oids[i] = oid
	}
	if own {
		if err := db.Commit(); err != nil {
			return nil, err
		}
	}
	return oids, nil
}

// appendHistory adds an entry to the material's history chain, growing it by
// a chunk clustered next to the previous head when the head fills up.
func (db *DB) appendHistory(moid storage.OID, m *materialRec, e historyEntry) error {
	if m.historyHead.IsNil() {
		data := newHistoryChunk(storage.NilOID)
		historyChunkAppend(data, e)
		// The first chunk is clustered with the step record it references,
		// seeding this material's neighbourhood in the history segment.
		chunk, err := db.sm.AllocateNear(e.step, data)
		if err != nil {
			return fmt.Errorf("labbase: history chunk: %w", err)
		}
		m.historyHead = chunk
		return nil
	}
	data, err := db.sm.Read(m.historyHead)
	if err != nil {
		return fmt.Errorf("labbase: read history head: %w", err)
	}
	if err := checkHistoryChunk(data); err != nil {
		return err
	}
	if historyChunkAppend(data, e) {
		return db.sm.Write(m.historyHead, data)
	}
	ndata := newHistoryChunk(m.historyHead)
	historyChunkAppend(ndata, e)
	chunk, err := db.sm.AllocateNear(m.historyHead, ndata)
	if err != nil {
		return fmt.Errorf("labbase: history chunk: %w", err)
	}
	m.historyHead = chunk
	return nil
}

// updateMostRecent folds the step's attributes into the material's
// most-recent index, honouring valid-time order for out-of-order arrivals.
// The index bytes are served from the decode cache when present; the entry
// is dropped before the mutation and re-installed only after the write
// succeeds, so the cache never holds unpersisted bytes. Cached bytes are
// never mutated in place: lock-free readers may hold the cached slice, so
// the mutation works on a private copy and the original becomes the
// version-table pre-image.
func (db *DB) updateMostRecent(moid storage.OID, m *materialRec, attrs []AttrID, e historyEntry) error {
	if len(attrs) == 0 && !m.mrIndex.IsNil() {
		return nil
	}
	var data []byte
	var pre []byte // unmutated bytes for snapshot readers; nil for a fresh index
	var err error
	if m.mrIndex.IsNil() {
		data = newMRIndex(mrInitialCap)
		oid, err := db.sm.Allocate(storage.SegIndex, data)
		if err != nil {
			return fmt.Errorf("labbase: most-recent index: %w", err)
		}
		m.mrIndex = oid
		// No pre-image: readers pinned to earlier epochs see the material
		// record's pre-image, whose mrIndex is still nil.
	} else if cached, ok := db.mrCache.get(m.mrIndex); ok {
		pre = cached
		data = append([]byte(nil), cached...)
	} else {
		data, err = db.sm.Read(m.mrIndex)
		if err != nil {
			return fmt.Errorf("labbase: read most-recent index: %w", err)
		}
		if err := checkMRIndex(data); err != nil {
			return err
		}
		pre = append([]byte(nil), data...)
	}
	db.mrCache.invalidate(m.mrIndex)
	changed := false
	for _, a := range attrs {
		var c bool
		data, c = mrUpsert(data, mrEntry{attr: a, validTime: e.validTime, step: e.step})
		changed = changed || c
	}
	if !changed {
		db.mrCache.put(m.mrIndex, data)
		return nil
	}
	if pre != nil {
		// Strictly before the overwrite: a reader that sees post-image bytes
		// must already find the pre-image in the version table.
		db.vers.save(m.mrIndex, db.wEpoch, pre)
	}
	if err := db.sm.Write(m.mrIndex, data); err != nil {
		return err
	}
	db.mrCache.put(m.mrIndex, data)
	return nil
}

// GetStep returns the public view of a step instance.
func (db *DB) GetStep(oid storage.OID) (*Step, error) {
	s := db.acquire()
	defer s.Close()
	return s.GetStep(oid)
}

// GetStep returns the step's public view. Steps are immutable once written,
// so only the catalog lookup is snapshot-dependent.
func (s *Snap) GetStep(oid storage.OID) (*Step, error) {
	sr, err := s.db.readStep(oid)
	if err != nil {
		return nil, err
	}
	cat := s.catView()
	sc, err := cat.stepClass(sr.classID)
	if err != nil {
		return nil, err
	}
	out := &Step{
		OID:       oid,
		Class:     sc.Name,
		Version:   sr.version,
		ValidTime: sr.validTime,
		TxnTime:   sr.txnTime,
		Materials: sr.materials,
		Set:       sr.set,
	}
	out.Attrs = make([]AttrValue, len(sr.attrIDs))
	for i, a := range sr.attrIDs {
		def, err := cat.attr(a)
		if err != nil {
			return nil, err
		}
		out.Attrs[i] = AttrValue{Name: def.Name, Value: sr.attrVals[i]}
	}
	return out, nil
}

// Attr returns the named attribute's value from a step view.
func (s *Step) Attr(name string) (Value, bool) {
	for _, av := range s.Attrs {
		if av.Name == name {
			return av.Value, true
		}
	}
	return Nil(), false
}

// ScanSteps calls fn for each instance of a step class, in insertion order.
func (db *DB) ScanSteps(class string, fn func(*Step) error) error {
	s := db.acquire()
	defer s.Close()
	return s.ScanSteps(class, fn)
}

// ScanSteps scans a step class's instances as of the snapshot.
func (s *Snap) ScanSteps(class string, fn func(*Step) error) error {
	cat := s.catView()
	sc, ok := cat.bySCName[class]
	if !ok {
		return fmt.Errorf("%w: step class %q", ErrUnknownClass, class)
	}
	return s.scanExtentN(sc.extentHead, s.cntView().stepsByClass[sc.ID-1], func(oid storage.OID) error {
		st, err := s.GetStep(oid)
		if err != nil {
			return err
		}
		return fn(st)
	})
}
