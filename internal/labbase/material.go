package labbase

import (
	"fmt"
	"sort"

	"labflow/internal/rec"
	"labflow/internal/storage"
)

// Material is the public view of an sm_material record.
type Material struct {
	OID        storage.OID
	Class      string
	Name       string
	State      string // "" when the material has no workflow state
	CreatedAt  int64  // valid time of creation
	HistoryLen int    // number of steps that have processed this material
}

// CreateMaterial inserts a new material of the given class. state may be ""
// (no workflow state) or a defined state name; validTime is the lab time the
// material came into existence. A non-empty name is the material's key and
// must be unique across the database.
func (db *DB) CreateMaterial(class, name, state string, validTime int64) (storage.OID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.requireTxn(); err != nil {
		return storage.NilOID, err
	}
	mc, ok := db.cat.byMCName[class]
	if !ok {
		return storage.NilOID, fmt.Errorf("%w: material class %q", ErrUnknownClass, class)
	}
	if name != "" {
		if _, dup := db.nameIdx[name]; dup {
			return storage.NilOID, fmt.Errorf("%w: %q", ErrDuplicateName, name)
		}
	}
	var stateID StateID
	if state != "" {
		stateID, ok = db.cat.byState[state]
		if !ok {
			return storage.NilOID, fmt.Errorf("%w: %q", ErrUnknownState, state)
		}
	}
	m := &materialRec{
		classID:   mc.ID,
		stateID:   stateID,
		createdAt: validTime,
		name:      name,
	}
	oid, err := db.allocMaterial(m)
	if err != nil {
		return storage.NilOID, fmt.Errorf("labbase: create material: %w", err)
	}
	changed, err := db.appendToExtent(&mc.extentHead, oid)
	if err != nil {
		return storage.NilOID, err
	}
	if changed {
		db.cat.dirty = true
	}
	db.cnt.matsByClass[mc.ID-1]++
	if stateID != 0 {
		db.cnt.matsByState[stateID-1]++
		db.stateIdxAdd(stateID, oid)
	}
	if name != "" {
		db.nameIdx[name] = oid
	}
	db.cntDirty = true
	return oid, nil
}

// LookupMaterial resolves a material by its name (the lab's natural key) —
// the LabFlow analog of TPC's "look up an account record given its key".
func (db *DB) LookupMaterial(name string) (storage.OID, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	oid, ok := db.nameIdx[name]
	return oid, ok
}

// GetMaterial returns the public view of a material.
func (db *DB) GetMaterial(oid storage.OID) (*Material, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.getMaterialLocked(oid)
}

func (db *DB) getMaterialLocked(oid storage.OID) (*Material, error) {
	m, err := db.readMaterial(oid)
	if err != nil {
		return nil, err
	}
	mc, err := db.cat.materialClass(m.classID)
	if err != nil {
		return nil, err
	}
	out := &Material{
		OID:        oid,
		Class:      mc.Name,
		Name:       m.name,
		CreatedAt:  m.createdAt,
		HistoryLen: int(m.historyCount),
	}
	if m.stateID != 0 {
		out.State, err = db.cat.stateName(m.stateID)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// State returns a material's workflow state ("" if none).
func (db *DB) State(oid storage.OID) (string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m, err := db.readMaterial(oid)
	if err != nil {
		return "", err
	}
	if m.stateID == 0 {
		return "", nil
	}
	return db.cat.stateName(m.stateID)
}

// SetState moves a material to a new workflow state — the retract/assert
// pair of the paper's workflow-tracking updates. state may be "" to clear.
func (db *DB) SetState(oid storage.OID, state string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.requireTxn(); err != nil {
		return err
	}
	var stateID StateID
	if state != "" {
		var ok bool
		stateID, ok = db.cat.byState[state]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownState, state)
		}
	}
	m, err := db.readMaterial(oid)
	if err != nil {
		return err
	}
	if m.stateID == stateID {
		return nil
	}
	if m.stateID != 0 {
		db.cnt.matsByState[m.stateID-1]--
		db.stateIdxRemove(m.stateID, oid)
	}
	m.stateID = stateID
	if stateID != 0 {
		db.cnt.matsByState[stateID-1]++
		db.stateIdxAdd(stateID, oid)
	}
	db.cntDirty = true
	return db.writeMaterial(oid, m)
}

// MaterialsInState returns the materials currently in the named state,
// sorted by OID for determinism.
func (db *DB) MaterialsInState(state string) ([]storage.OID, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id, ok := db.cat.byState[state]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownState, state)
	}
	set := db.stateIdx[id]
	out := make([]storage.OID, 0, len(set))
	for oid := range set {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// CountInState returns the number of materials in the named state.
func (db *DB) CountInState(state string) (uint64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id, ok := db.cat.byState[state]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownState, state)
	}
	return db.cnt.matsByState[id-1], nil
}

// CountMaterials counts the instances of a material class, including
// subclasses (is-a semantics).
func (db *DB) CountMaterials(class string) (uint64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	mc, ok := db.cat.byMCName[class]
	if !ok {
		return 0, fmt.Errorf("%w: material class %q", ErrUnknownClass, class)
	}
	var total uint64
	for _, c := range db.cat.materialClasses {
		if db.cat.isSubclass(c.ID, mc.ID) {
			total += db.cnt.matsByClass[c.ID-1]
		}
	}
	return total, nil
}

// CountSteps counts the instances of a step class across all its versions.
func (db *DB) CountSteps(class string) (uint64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	sc, ok := db.cat.bySCName[class]
	if !ok {
		return 0, fmt.Errorf("%w: step class %q", ErrUnknownClass, class)
	}
	return db.cnt.stepsByClass[sc.ID-1], nil
}

// ScanMaterials calls fn for each material of the class (subclasses
// included), in insertion order per class.
func (db *DB) ScanMaterials(class string, fn func(*Material) error) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	mc, ok := db.cat.byMCName[class]
	if !ok {
		return fmt.Errorf("%w: material class %q", ErrUnknownClass, class)
	}
	for _, c := range db.cat.materialClasses {
		if !db.cat.isSubclass(c.ID, mc.ID) {
			continue
		}
		err := db.scanExtent(c.extentHead, func(oid storage.OID) error {
			m, err := db.getMaterialLocked(oid)
			if err != nil {
				return err
			}
			return fn(m)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ScanAllMaterials calls fn once for every material in the database,
// walking each concrete class's extent (no subclass double-counting).
func (db *DB) ScanAllMaterials(fn func(*Material) error) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, c := range db.cat.materialClasses {
		err := db.scanExtent(c.extentHead, func(oid storage.OID) error {
			m, err := db.getMaterialLocked(oid)
			if err != nil {
				return err
			}
			return fn(m)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// CreateMaterialSet stores a write-once material_set over the given members
// (each must be a live material) and returns its OID.
func (db *DB) CreateMaterialSet(members []storage.OID) (storage.OID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.requireTxn(); err != nil {
		return storage.NilOID, err
	}
	for _, m := range members {
		if _, err := db.readMaterial(m); err != nil {
			return storage.NilOID, fmt.Errorf("labbase: set member %v: %w", m, err)
		}
	}
	e := rec.GetEncoder()
	encodeSetTo(e, members)
	oid, err := db.sm.Allocate(storage.SegHistory, e.Bytes())
	rec.PutEncoder(e)
	if err != nil {
		return storage.NilOID, fmt.Errorf("labbase: create set: %w", err)
	}
	return oid, nil
}

// SetMembers returns the members of a material_set.
func (db *DB) SetMembers(oid storage.OID) ([]storage.OID, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.setMembersLocked(oid)
}

func (db *DB) setMembersLocked(oid storage.OID) ([]storage.OID, error) {
	data, err := db.sm.Read(oid)
	if err != nil {
		return nil, err
	}
	return decodeSetRec(data)
}
