package labbase

import (
	"fmt"

	"labflow/internal/rec"
	"labflow/internal/storage"
)

// Material is the public view of an sm_material record.
type Material struct {
	OID        storage.OID
	Class      string
	Name       string
	State      string // "" when the material has no workflow state
	CreatedAt  int64  // valid time of creation
	HistoryLen int    // number of steps that have processed this material
}

// CreateMaterial inserts a new material of the given class. state may be ""
// (no workflow state) or a defined state name; validTime is the lab time the
// material came into existence. A non-empty name is the material's key and
// must be unique across the database.
func (db *DB) CreateMaterial(class, name, state string, validTime int64) (storage.OID, error) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	defer db.publishIfDirty()
	if err := db.requireTxn(); err != nil {
		return storage.NilOID, err
	}
	mc, ok := db.cat.byMCName[class]
	if !ok {
		return storage.NilOID, fmt.Errorf("%w: material class %q", ErrUnknownClass, class)
	}
	if name != "" {
		if _, dup := treapGet(db.nameRoot, name); dup {
			return storage.NilOID, fmt.Errorf("%w: %q", ErrDuplicateName, name)
		}
	}
	var stateID StateID
	if state != "" {
		stateID, ok = db.cat.byState[state]
		if !ok {
			return storage.NilOID, fmt.Errorf("%w: %q", ErrUnknownState, state)
		}
	}
	m := &materialRec{
		classID:   mc.ID,
		stateID:   stateID,
		createdAt: validTime,
		name:      name,
	}
	oid, err := db.allocMaterial(m)
	if err != nil {
		return storage.NilOID, fmt.Errorf("labbase: create material: %w", err)
	}
	// Creation marker: readers pinned to earlier epochs must not see the
	// new material even though its record now exists in storage.
	db.vers.save(oid, db.wEpoch, nil)
	changed, err := db.appendToExtent(&mc.extentHead, oid)
	if err != nil {
		return storage.NilOID, err
	}
	if changed {
		db.markCat()
	}
	db.cnt.matsByClass[mc.ID-1]++
	if stateID != 0 {
		db.cnt.matsByState[stateID-1]++
		db.stateIdxAdd(stateID, oid)
	}
	if name != "" {
		db.nameRoot = treapPut(db.nameRoot, name, namePri(name), oid)
	}
	db.markCnt()
	return oid, nil
}

// LookupMaterial resolves a material by its name (the lab's natural key) —
// the LabFlow analog of TPC's "look up an account record given its key".
func (db *DB) LookupMaterial(name string) (storage.OID, bool) {
	s := db.acquire()
	defer s.Close()
	return s.LookupMaterial(name)
}

// LookupMaterial resolves a material name as of the snapshot.
func (s *Snap) LookupMaterial(name string) (storage.OID, bool) {
	return treapGet(s.nameRootView(), name)
}

// GetMaterial returns the public view of a material.
func (db *DB) GetMaterial(oid storage.OID) (*Material, error) {
	s := db.acquire()
	defer s.Close()
	return s.GetMaterial(oid)
}

// GetMaterial returns the material's public view as of the snapshot.
func (s *Snap) GetMaterial(oid storage.OID) (*Material, error) {
	m, err := s.readMaterial(oid)
	if err != nil {
		return nil, err
	}
	cat := s.catView()
	mc, err := cat.materialClass(m.classID)
	if err != nil {
		return nil, err
	}
	out := &Material{
		OID:        oid,
		Class:      mc.Name,
		Name:       m.name,
		CreatedAt:  m.createdAt,
		HistoryLen: int(m.historyCount),
	}
	if m.stateID != 0 {
		out.State, err = cat.stateName(m.stateID)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// State returns a material's workflow state ("" if none).
func (db *DB) State(oid storage.OID) (string, error) {
	s := db.acquire()
	defer s.Close()
	return s.State(oid)
}

// State returns the material's workflow state as of the snapshot.
func (s *Snap) State(oid storage.OID) (string, error) {
	m, err := s.readMaterial(oid)
	if err != nil {
		return "", err
	}
	if m.stateID == 0 {
		return "", nil
	}
	return s.catView().stateName(m.stateID)
}

// SetState moves a material to a new workflow state — the retract/assert
// pair of the paper's workflow-tracking updates. state may be "" to clear.
func (db *DB) SetState(oid storage.OID, state string) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	defer db.publishIfDirty()
	if err := db.requireTxn(); err != nil {
		return err
	}
	var stateID StateID
	if state != "" {
		var ok bool
		stateID, ok = db.cat.byState[state]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownState, state)
		}
	}
	m, err := db.readMaterial(oid)
	if err != nil {
		return err
	}
	if m.stateID == stateID {
		return nil
	}
	// Save the pre-image before any mutation: a reader that observes the
	// rewritten record always finds the version it should see instead.
	pre := *m
	db.vers.save(oid, db.wEpoch, &pre)
	if m.stateID != 0 {
		db.cnt.matsByState[m.stateID-1]--
		db.stateIdxRemove(m.stateID, oid)
	}
	m.stateID = stateID
	if stateID != 0 {
		db.cnt.matsByState[stateID-1]++
		db.stateIdxAdd(stateID, oid)
	}
	db.markCnt()
	return db.writeMaterial(oid, m)
}

// MaterialsInState returns the materials currently in the named state,
// sorted by OID for determinism.
func (db *DB) MaterialsInState(state string) ([]storage.OID, error) {
	s := db.acquire()
	defer s.Close()
	return s.MaterialsInState(state)
}

// MaterialsInState returns the state's members as of the snapshot.
func (s *Snap) MaterialsInState(state string) ([]storage.OID, error) {
	id, ok := s.catView().byState[state]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownState, state)
	}
	roots := s.stateRootsView()
	var root *treapNode[uint64, struct{}]
	if int(id) <= len(roots) {
		root = roots[id-1]
	}
	out := make([]storage.OID, 0, 16)
	_ = treapAscend(root, func(k uint64, _ struct{}) error {
		out = append(out, storage.OID(k))
		return nil
	})
	return out, nil
}

// CountInState returns the number of materials in the named state.
func (db *DB) CountInState(state string) (uint64, error) {
	s := db.acquire()
	defer s.Close()
	return s.CountInState(state)
}

// CountInState counts the state's members as of the snapshot.
func (s *Snap) CountInState(state string) (uint64, error) {
	id, ok := s.catView().byState[state]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownState, state)
	}
	return s.cntView().matsByState[id-1], nil
}

// CountMaterials counts the instances of a material class, including
// subclasses (is-a semantics).
func (db *DB) CountMaterials(class string) (uint64, error) {
	s := db.acquire()
	defer s.Close()
	return s.CountMaterials(class)
}

// CountMaterials counts a class's instances as of the snapshot.
func (s *Snap) CountMaterials(class string) (uint64, error) {
	cat := s.catView()
	mc, ok := cat.byMCName[class]
	if !ok {
		return 0, fmt.Errorf("%w: material class %q", ErrUnknownClass, class)
	}
	cnt := s.cntView()
	var total uint64
	for _, c := range cat.materialClasses {
		if cat.isSubclass(c.ID, mc.ID) {
			total += cnt.matsByClass[c.ID-1]
		}
	}
	return total, nil
}

// CountSteps counts the instances of a step class across all its versions.
func (db *DB) CountSteps(class string) (uint64, error) {
	s := db.acquire()
	defer s.Close()
	return s.CountSteps(class)
}

// CountSteps counts a step class's instances as of the snapshot.
func (s *Snap) CountSteps(class string) (uint64, error) {
	sc, ok := s.catView().bySCName[class]
	if !ok {
		return 0, fmt.Errorf("%w: step class %q", ErrUnknownClass, class)
	}
	return s.cntView().stepsByClass[sc.ID-1], nil
}

// ScanMaterials calls fn for each material of the class (subclasses
// included), in insertion order per class.
func (db *DB) ScanMaterials(class string, fn func(*Material) error) error {
	s := db.acquire()
	defer s.Close()
	return s.ScanMaterials(class, fn)
}

// ScanMaterials scans a class's instances as of the snapshot.
func (s *Snap) ScanMaterials(class string, fn func(*Material) error) error {
	cat := s.catView()
	mc, ok := cat.byMCName[class]
	if !ok {
		return fmt.Errorf("%w: material class %q", ErrUnknownClass, class)
	}
	cnt := s.cntView()
	for _, c := range cat.materialClasses {
		if !cat.isSubclass(c.ID, mc.ID) {
			continue
		}
		err := s.scanExtentN(c.extentHead, cnt.matsByClass[c.ID-1], func(oid storage.OID) error {
			m, err := s.GetMaterial(oid)
			if err != nil {
				return err
			}
			return fn(m)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ScanAllMaterials calls fn once for every material in the database,
// walking each concrete class's extent (no subclass double-counting).
func (db *DB) ScanAllMaterials(fn func(*Material) error) error {
	s := db.acquire()
	defer s.Close()
	return s.ScanAllMaterials(fn)
}

// ScanAllMaterials scans every material as of the snapshot.
func (s *Snap) ScanAllMaterials(fn func(*Material) error) error {
	cat := s.catView()
	cnt := s.cntView()
	for _, c := range cat.materialClasses {
		err := s.scanExtentN(c.extentHead, cnt.matsByClass[c.ID-1], func(oid storage.OID) error {
			m, err := s.GetMaterial(oid)
			if err != nil {
				return err
			}
			return fn(m)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// CreateMaterialSet stores a write-once material_set over the given members
// (each must be a live material) and returns its OID.
func (db *DB) CreateMaterialSet(members []storage.OID) (storage.OID, error) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if err := db.requireTxn(); err != nil {
		return storage.NilOID, err
	}
	for _, m := range members {
		if _, err := db.readMaterial(m); err != nil {
			return storage.NilOID, fmt.Errorf("labbase: set member %v: %w", m, err)
		}
	}
	e := rec.GetEncoder()
	encodeSetTo(e, members)
	oid, err := db.sm.Allocate(storage.SegHistory, e.Bytes())
	rec.PutEncoder(e)
	if err != nil {
		return storage.NilOID, fmt.Errorf("labbase: create set: %w", err)
	}
	// No publish: a set is write-once and reachable only through the OID
	// just returned, so no in-memory snapshot structure changes.
	return oid, nil
}

// SetMembers returns the members of a material_set.
func (db *DB) SetMembers(oid storage.OID) ([]storage.OID, error) {
	s := db.acquire()
	defer s.Close()
	return s.SetMembers(oid)
}

// SetMembers reads a material_set. Sets are write-once, so no snapshot
// correction is needed.
func (s *Snap) SetMembers(oid storage.OID) ([]storage.OID, error) {
	return s.db.setMembersLocked(oid)
}

func (db *DB) setMembersLocked(oid storage.OID) ([]storage.OID, error) {
	data, err := db.sm.Read(oid)
	if err != nil {
		return nil, err
	}
	return decodeSetRec(data)
}
