package labbase

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"labflow/internal/rec"
	"labflow/internal/storage"
	"labflow/internal/storage/texas"
	"path/filepath"
)

// TestHistoryChunkBoundaries exercises exactly-full, one-over and multi-chunk
// histories (chunk capacity is 64).
func TestHistoryChunkBoundaries(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 129, 200} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			db := openMem(t)
			defineBasics(t, db)
			begin(t, db)
			m, err := db.CreateMaterial("clone", "c", "", 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if _, err := db.RecordStep(StepSpec{
					Class: "determine_sequence", ValidTime: int64(i),
					Materials: []storage.OID{m},
					Attrs:     []AttrValue{{Name: "sequence", Value: String(fmt.Sprint(i))}},
				}); err != nil {
					t.Fatal(err)
				}
			}
			commit(t, db)
			hist, err := db.History(m)
			if err != nil {
				t.Fatal(err)
			}
			if len(hist) != n {
				t.Fatalf("history len = %d, want %d", len(hist), n)
			}
			for i, h := range hist {
				if h.ValidTime != int64(i) {
					t.Fatalf("entry %d valid time = %d", i, h.ValidTime)
				}
			}
			v, _, ok, err := db.MostRecent(m, "sequence")
			if err != nil || !ok || v.Str != fmt.Sprint(n-1) {
				t.Fatalf("MostRecent = %v, %v, %v", v, ok, err)
			}
			if mm, _ := db.GetMaterial(m); mm.HistoryLen != n {
				t.Fatalf("HistoryLen = %d", mm.HistoryLen)
			}
		})
	}
}

// TestExtentBoundaries crosses the 256-entry extent chunk boundary.
func TestExtentBoundaries(t *testing.T) {
	db := openMem(t)
	defineBasics(t, db)
	begin(t, db)
	const n = 600
	for i := 0; i < n; i++ {
		if _, err := db.CreateMaterial("clone", fmt.Sprintf("c%d", i), "", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, db)
	if got, _ := db.CountMaterials("clone"); got != n {
		t.Fatalf("count = %d", got)
	}
	var seen int
	var lastName string
	err := db.ScanMaterials("clone", func(m *Material) error {
		seen++
		lastName = m.Name
		return nil
	})
	if err != nil || seen != n {
		t.Fatalf("scan visited %d, %v", seen, err)
	}
	// Insertion order is preserved across chunks.
	if lastName != fmt.Sprintf("c%d", n-1) {
		t.Errorf("last scanned = %q", lastName)
	}
}

// TestMostRecentIndexGrowth pushes a material past the initial 8-entry
// most-recent index capacity (the record must relocate and keep working).
func TestMostRecentIndexGrowth(t *testing.T) {
	db := openMem(t)
	defineBasics(t, db)
	begin(t, db)
	m, err := db.CreateMaterial("clone", "c", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	const nAttrs = 40
	for i := 0; i < nAttrs; i++ {
		if _, err := db.RecordStep(StepSpec{
			Class: "wide_step", ValidTime: int64(i + 1),
			Materials: []storage.OID{m},
			Attrs:     []AttrValue{{Name: fmt.Sprintf("attr_%02d", i), Value: Int64(int64(i))}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, db)
	for i := 0; i < nAttrs; i++ {
		v, _, ok, err := db.MostRecent(m, fmt.Sprintf("attr_%02d", i))
		if err != nil || !ok || v.Int != int64(i) {
			t.Fatalf("attr_%02d = %v, %v, %v", i, v, ok, err)
		}
	}
	// Each single-attribute set spawned its own step-class version.
	vers, err := db.StepClassVersions("wide_step")
	if err != nil || len(vers) != nAttrs {
		t.Fatalf("versions = %d, %v", len(vers), err)
	}
}

// TestOversizedValues stores attribute values larger than a storage page
// (the overflow-record path end to end through LabBase).
func TestOversizedValues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.db")
	sm, err := texas.Open(texas.Options{Path: path, Clustering: true})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(sm, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defineBasics(t, db)
	begin(t, db)
	m, err := db.CreateMaterial("clone", "c", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("ACGT", 10000) // 40 KB consensus
	if _, err := db.RecordStep(StepSpec{
		Class: "assemble", ValidTime: 1,
		Materials: []storage.OID{m},
		Attrs:     []AttrValue{{Name: "consensus_big", Value: String(big)}},
	}); err != nil {
		t.Fatal(err)
	}
	commit(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	sm2, err := texas.Open(texas.Options{Path: path, Clustering: true})
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(sm2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, _, ok, err := db2.MostRecent(m, "consensus_big")
	if err != nil || !ok || v.Str != big {
		t.Fatalf("oversized value: ok=%v len=%d err=%v", ok, len(v.Str), err)
	}
}

// TestManyClassesCatalog grows the catalog well past one page worth of
// schema and checks persistence.
func TestManyClassesCatalog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cat.db")
	sm, err := texas.Open(texas.Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(sm, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	begin(t, db)
	const n = 300
	for i := 0; i < n; i++ {
		if _, err := db.DefineMaterialClass(fmt.Sprintf("material_class_with_a_long_name_%03d", i), ""); err != nil {
			t.Fatal(err)
		}
		if _, err := db.DefineState(fmt.Sprintf("state_with_a_long_name_%03d", i)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := db.DefineStepClass(fmt.Sprintf("step_class_with_a_long_name_%03d", i), []AttrDef{
			{Name: fmt.Sprintf("attribute_with_a_long_name_%03d", i), Kind: KindString},
		}); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	sm2, err := texas.Open(texas.Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(sm2, DefaultOptions())
	if err != nil {
		t.Fatalf("reopen with big catalog: %v", err)
	}
	defer db2.Close()
	if got := len(db2.MaterialClasses()); got != n {
		t.Errorf("classes after reopen = %d", got)
	}
	if got := len(db2.States()); got != n {
		t.Errorf("states after reopen = %d", got)
	}
	if got := len(db2.StepClasses()); got != n {
		t.Errorf("step classes after reopen = %d", got)
	}
}

// TestQuickValueRoundTrip property-tests the value codec over random nested
// values.
func TestQuickValueRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var gen func(depth int) Value
	gen = func(depth int) Value {
		switch rng.Intn(7) {
		case 0:
			return Nil()
		case 1:
			return Int64(rng.Int63() - rng.Int63())
		case 2:
			return Float64(rng.NormFloat64())
		case 3:
			b := make([]byte, rng.Intn(20))
			rng.Read(b)
			return String(string(b))
		case 4:
			return Bool(rng.Intn(2) == 0)
		case 5:
			return Ref(storage.MakeOID(storage.SegmentID(rng.Intn(4)), uint64(rng.Intn(1000)+1)))
		default:
			if depth <= 0 {
				return Int64(0)
			}
			n := rng.Intn(4)
			elems := make([]Value, n)
			for i := range elems {
				elems[i] = gen(depth - 1)
			}
			return ListOf(elems...)
		}
	}
	f := func() bool {
		v := gen(3)
		e := rec.NewEncoder(64)
		EncodeValue(e, v)
		d := rec.NewDecoder(e.Bytes())
		got := DecodeValue(d)
		return d.Finish() == nil && got.Equal(v)
	}
	for i := 0; i < 300; i++ {
		if !f() {
			t.Fatalf("value round trip failed at iteration %d", i)
		}
	}
}

// TestValueStringForms pins the display forms used in reports and traces.
func TestValueStringForms(t *testing.T) {
	cases := map[string]Value{
		"nil":            Nil(),
		"42":             Int64(42),
		"2.5":            Float64(2.5),
		`"ACGT"`:         String("ACGT"),
		"true":           Bool(true),
		"false":          Bool(false),
		"[1, \"x\"]":     ListOf(Int64(1), String("x")),
		"oid(history:3)": Ref(storage.MakeOID(storage.SegHistory, 3)),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%v-kind) = %q, want %q", v.Kind, got, want)
		}
	}
}
