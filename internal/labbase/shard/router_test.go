package shard

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"labflow/internal/labbase"
	"labflow/internal/storage"
	"labflow/internal/storage/memstore"
	"labflow/internal/wire"
)

// serveStore fronts one store with a wire server on addr ("127.0.0.1:0"
// for a fresh port) and returns the bound address and a stopper.
func serveStore(t *testing.T, db labbase.Store, addr string) (string, func()) {
	t.Helper()
	srv := wire.NewServer(db)
	srv.SetLogf(nil)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		srv.Shutdown()
		<-done
	}
}

// startCluster brings up n member servers over memstores and returns the
// topology plus each member store (kept open across server restarts).
func startCluster(t *testing.T, n int) (Topology, []*Member) {
	t.Helper()
	topo := Topology{Shards: make([]string, n)}
	members := make([]*Member, n)
	for k := 0; k < n; k++ {
		m, err := OpenMember(memstore.Open("cluster-mm"), k, n, labbase.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		members[k] = m
		t.Cleanup(func() { m.Close() })
		addr, stop := serveStore(t, m, "127.0.0.1:0")
		t.Cleanup(stop)
		topo.Shards[k] = addr
	}
	return topo, members
}

func openTestRouter(t *testing.T, topo Topology, opts RouterOptions) *Router {
	t.Helper()
	r, err := OpenRouter(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// identityWorkload drives one comprehensive pass — schema, materials,
// sets, explicit and implicit steps, batches, every read, and a gallery
// of failure shapes — against any Store, appending one line per operation
// result (errors included, verbatim). Running it against an in-process
// shard.DB and a Router over the same shard count must produce identical
// logs: that is the distributed byte-identity contract, data bytes and
// error bytes both.
func identityWorkload(db labbase.Store, n int) []string {
	var log []string
	out := func(format string, args ...any) { log = append(log, fmt.Sprintf(format, args...)) }
	fail := func(what string, err error) { out("%s ERR %v", what, err) }

	// Mutations outside the bracket must be refused.
	if _, err := db.CreateMaterial("sample", "early", "received", 1); err != nil {
		fail("early-create", err)
	}
	if _, err := db.DefineState("early"); err != nil {
		fail("early-define", err)
	}

	// Schema bracket.
	if err := db.Begin(); err != nil {
		fail("begin", err)
	}
	for _, def := range []func() error{
		func() error { _, err := db.DefineMaterialClass("sample", ""); return err },
		func() error { _, err := db.DefineMaterialClass("gel", "sample"); return err },
		func() error { _, err := db.DefineState("received"); return err },
		func() error { _, err := db.DefineState("done"); return err },
		func() error { _, err := db.DefineAttr("reading", labbase.KindInt); return err },
		func() error {
			_, _, err := db.DefineStepClass("measure", []labbase.AttrDef{{Name: "reading", Kind: labbase.KindInt}})
			return err
		},
	} {
		if err := def(); err != nil {
			fail("define", err)
		}
	}
	// Duplicate definition: error bytes must match too.
	if _, err := db.DefineState("done"); err != nil {
		fail("dup-state", err)
	}

	// Materials, grouped by home shard so sets can be built same-shard and
	// cross-shard deliberately.
	const mats = 18
	names := make([]string, mats)
	oids := make([]storage.OID, mats)
	byShard := make([][]int, n)
	for i := range names {
		names[i] = fmt.Sprintf("m-%d", i)
		oid, err := db.CreateMaterial("sample", names[i], "received", int64(i))
		if err != nil {
			fail("create", err)
			continue
		}
		oids[i] = oid
		k := ShardFor(names[i], n)
		byShard[k] = append(byShard[k], i)
		out("create %s -> %v", names[i], oid)
	}
	var same []storage.OID
	var cross []storage.OID
	for _, idx := range byShard {
		if len(idx) >= 2 && same == nil {
			same = []storage.OID{oids[idx[0]], oids[idx[1]]}
		}
	}
	if n > 1 {
		for k, idx := range byShard {
			if len(idx) > 0 && ShardOfOID(oids[idx[0]]) == k {
				cross = append(cross, oids[idx[0]])
			}
			if len(cross) == 2 {
				break
			}
		}
	}
	setOID, err := db.CreateMaterialSet(same)
	if err != nil {
		fail("set", err)
	} else {
		out("set -> %v", setOID)
	}
	if len(cross) == 2 {
		if _, err := db.CreateMaterialSet(cross); err != nil {
			fail("cross-set", err)
		}
	}
	if err := db.SetState(oids[0], "done"); err != nil {
		fail("setstate", err)
	}
	if err := db.SetState(oids[1], "nowhere"); err != nil {
		fail("setstate-bad", err)
	}
	// In-bracket steps: explicit class, then an implicit one (exercises the
	// in-bracket schema broadcast).
	for i := 0; i < 6; i++ {
		oid, err := db.RecordStep(labbase.StepSpec{
			Class:     "measure",
			ValidTime: int64(100 + i),
			Materials: []storage.OID{oids[i]},
			Attrs:     []labbase.AttrValue{{Name: "reading", Value: labbase.Int64(int64(i * 11))}},
		})
		if err != nil {
			fail("step", err)
		} else {
			out("step -> %v", oid)
		}
	}
	if _, err := db.RecordStep(labbase.StepSpec{
		Class:     "prep",
		ValidTime: 200,
		Materials: []storage.OID{oids[2]},
		Attrs:     []labbase.AttrValue{{Name: "temp", Value: labbase.Int64(37)}},
	}); err != nil {
		fail("implicit-step", err)
	}
	// In-bracket batch joins the transaction sequentially.
	if batch, err := db.PutSteps([]labbase.StepSpec{
		{Class: "measure", ValidTime: 300, Materials: []storage.OID{oids[3]},
			Attrs: []labbase.AttrValue{{Name: "reading", Value: labbase.Int64(1)}}},
		{Class: "measure", ValidTime: 301, Materials: []storage.OID{oids[4]},
			Attrs: []labbase.AttrValue{{Name: "reading", Value: labbase.Int64(2)}}},
	}); err != nil {
		fail("txn-batch", err)
	} else {
		out("txn-batch -> %v", batch)
	}
	if err := db.Commit(); err != nil {
		fail("commit", err)
	}

	// Out-of-bracket batch: fans out one transaction per touched shard,
	// with an implicit class of its own.
	var stepOIDs []storage.OID
	specs := make([]labbase.StepSpec, mats)
	for i := range specs {
		specs[i] = labbase.StepSpec{
			Class:     "wash",
			ValidTime: int64(400 + i),
			Materials: []storage.OID{oids[i]},
			Attrs:     []labbase.AttrValue{{Name: "cycles", Value: labbase.Int64(int64(i))}},
		}
	}
	if batch, err := db.PutSteps(specs); err != nil {
		fail("batch", err)
	} else {
		stepOIDs = batch
		out("batch -> %v", batch)
	}
	// Batch with an unroutable entry: rejected whole, nothing recorded.
	if len(cross) == 2 {
		if _, err := db.PutSteps([]labbase.StepSpec{
			{Class: "wash", ValidTime: 500, Materials: []storage.OID{oids[0]}},
			{Class: "wash", ValidTime: 501, Materials: cross},
		}); err != nil {
			fail("cross-batch", err)
		}
	}
	// Batch with an entry that fails on its shard (a step OID is not a
	// material): per-shard atomic, error names the original index.
	if len(stepOIDs) == mats {
		if _, err := db.PutSteps([]labbase.StepSpec{
			{Class: "wash", ValidTime: 600, Materials: []storage.OID{oids[5]},
				Attrs: []labbase.AttrValue{{Name: "cycles", Value: labbase.Int64(9)}}},
			{Class: "wash", ValidTime: 601, Materials: []storage.OID{stepOIDs[0]}},
		}); err != nil {
			fail("bad-batch", err)
		}
	}

	// Reads, routed and scattered.
	for i, name := range names {
		oid, ok := db.LookupMaterial(name)
		out("lookup %s -> %v %v", name, oid, ok)
		if i >= 3 {
			continue
		}
		m, err := db.GetMaterial(oid)
		if err != nil {
			fail("get", err)
		} else {
			out("get %s -> %+v", name, *m)
		}
		st, err := db.State(oid)
		out("state %s -> %q err=%v", name, st, err)
		h, err := db.History(oid)
		out("history %s -> %v err=%v", name, h, err)
		v, src, ok, err := db.MostRecent(oid, "reading")
		out("mr %s -> %v %v %v err=%v", name, v, src, ok, err)
		v, src, ok, err = db.MostRecentScan(oid, "cycles")
		out("mrs %s -> %v %v %v err=%v", name, v, src, ok, err)
		v, src, ok, err = db.MostRecentAsOf(oid, "cycles", 350)
		out("mrao %s -> %v %v %v err=%v", name, v, src, ok, err)
		tl, err := db.AttrTimeline(oid, "reading")
		out("timeline %s -> %v err=%v", name, tl, err)
		inv, err := db.StepsInvolving(oid)
		out("involving %s -> %v err=%v", name, inv, err)
	}
	if _, ok := db.LookupMaterial("nobody"); ok {
		out("lookup nobody unexpectedly found")
	}
	if _, err := db.GetMaterial(oids[0] + 7777); err != nil {
		fail("get-bogus", err)
	}
	if len(stepOIDs) > 0 {
		s, err := db.GetStep(stepOIDs[0])
		if err != nil {
			fail("getstep", err)
		} else {
			out("getstep -> %+v", *s)
		}
		if _, err := db.GetStep(oids[0]); err != nil {
			fail("getstep-material", err)
		}
	}
	members, err := db.SetMembers(setOID)
	out("members -> %v err=%v", members, err)

	for _, state := range []string{"received", "done", "nowhere"} {
		ms, err := db.MaterialsInState(state)
		out("instate %s -> %v err=%v", state, ms, err)
		c, err := db.CountInState(state)
		out("countstate %s -> %d err=%v", state, c, err)
	}
	for _, class := range []string{"sample", "gel"} {
		c, err := db.CountMaterials(class)
		out("countmat %s -> %d err=%v", class, c, err)
	}
	for _, class := range []string{"measure", "wash", "prep"} {
		c, err := db.CountSteps(class)
		out("countstep %s -> %d err=%v", class, c, err)
	}
	var scanned []string
	if err := db.ScanMaterials("sample", func(m *labbase.Material) error {
		scanned = append(scanned, fmt.Sprintf("%v:%s", m.OID, m.Name))
		return nil
	}); err != nil {
		fail("scan", err)
	}
	out("scan -> %v", scanned)
	count := 0
	if err := db.ScanAllMaterials(func(m *labbase.Material) error {
		count++
		return nil
	}); err != nil {
		fail("scanall", err)
	}
	out("scanall -> %d", count)
	stopErr := errors.New("stop here")
	err = db.ScanAllMaterials(func(m *labbase.Material) error { return stopErr })
	out("scanstop -> %v", err)
	var stepsSeen []storage.OID
	if err := db.ScanSteps("wash", func(s *labbase.Step) error {
		stepsSeen = append(stepsSeen, s.OID)
		return nil
	}); err != nil {
		fail("scansteps", err)
	}
	out("scansteps -> %v", stepsSeen)

	out("classes %v states %v stepclasses %v", db.MaterialClasses(), db.States(), db.StepClasses())
	vers, err := db.StepClassVersions("wash")
	out("versions -> %v err=%v", vers, err)
	dump, err := db.Dump()
	out("dump -> %+v err=%v", dump, err)
	name, _ := db.StoreStats()
	out("store %s", name)
	return log
}

// TestRouterMatchesInProcess is the distributed byte-identity acceptance
// test: the identity workload through a Router over 3 member servers must
// produce the exact same log — data and error bytes — as the same
// workload on the in-process 3-shard facade over the same stores.
func TestRouterMatchesInProcess(t *testing.T) {
	const n = 3
	managers := make([]storage.Manager, n)
	for k := range managers {
		managers[k] = memstore.Open("cluster-mm")
	}
	local, err := Open(managers, labbase.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	want := identityWorkload(local, n)

	topo, _ := startCluster(t, n)
	r := openTestRouter(t, topo, RouterOptions{})
	got := identityWorkload(r, n)

	if len(got) != len(want) {
		t.Fatalf("log length: router %d lines, in-process %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d diverges:\nin-process: %s\nrouter:     %s", i, want[i], got[i])
		}
	}
}

// TestRouterOverOneServerMatchesPlain pins the 1-server degenerate case:
// a Router over a single server backed by a plain labbase.DB must be
// byte-identical to that DB — no shard prefixes, no name suffix.
func TestRouterOverOneServerMatchesPlain(t *testing.T) {
	plain, err := labbase.Open(memstore.Open("plain-mm"), labbase.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	want := identityWorkload(plain, 1)

	served, err := labbase.Open(memstore.Open("plain-mm"), labbase.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer served.Close()
	addr, stop := serveStore(t, served, "127.0.0.1:0")
	defer stop()
	r := openTestRouter(t, Topology{Shards: []string{addr}}, RouterOptions{})
	got := identityWorkload(r, 1)

	if len(got) != len(want) {
		t.Fatalf("log length: router %d lines, plain %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d diverges:\nplain:  %s\nrouter: %s", i, want[i], got[i])
		}
	}
}

// TestRouterSentinels verifies sentinel identity survives the full
// router → wire → server → store path: errors.Is at the router layer must
// classify exactly as it would in-process (satellite: wire error fidelity).
func TestRouterSentinels(t *testing.T) {
	topo, _ := startCluster(t, 2)
	r := openTestRouter(t, topo, RouterOptions{})

	// ErrNoTransaction: raised locally by the router (the servers would
	// auto-wrap, which is exactly the divergence the router prevents).
	if _, err := r.CreateMaterial("c", "x", "s", 0); !errors.Is(err, labbase.ErrNoTransaction) {
		t.Errorf("CreateMaterial outside bracket = %v, want ErrNoTransaction", err)
	}

	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DefineMaterialClass("sample", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DefineState("received"); err != nil {
		t.Fatal(err)
	}
	// ErrUnknownState across the wire.
	if _, err := r.CreateMaterial("sample", "a", "nowhere", 0); !errors.Is(err, labbase.ErrUnknownState) {
		t.Errorf("unknown state = %v, want ErrUnknownState", err)
	}
	// ErrUnknownClass across the wire.
	if _, err := r.CreateMaterial("mystery", "b", "received", 0); !errors.Is(err, labbase.ErrUnknownClass) {
		t.Errorf("unknown class = %v, want ErrUnknownClass", err)
	}
	var a, b storage.OID
	for i := 0; a == storage.NilOID || b == storage.NilOID; i++ {
		if i > 1000 {
			t.Fatal("no names found for both shards")
		}
		name := fmt.Sprintf("m-%d", i)
		oid, err := r.CreateMaterial("sample", name, "received", int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if ShardFor(name, 2) == 0 && a == storage.NilOID {
			a = oid
		} else if ShardFor(name, 2) == 1 && b == storage.NilOID {
			b = oid
		}
	}
	// ErrCrossShard from the shared routing helper (raised router-side).
	if _, err := r.CreateMaterialSet([]storage.OID{a, b}); !errors.Is(err, ErrCrossShard) {
		t.Errorf("cross-shard set = %v, want ErrCrossShard", err)
	}
	// ErrNoSuchObject across the wire.
	if _, err := r.GetMaterial(a + 7777); !errors.Is(err, storage.ErrNoSuchObject) {
		t.Errorf("bogus OID = %v, want ErrNoSuchObject", err)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}

	// A failing batch entry surfaces as a *BatchError whose index is the
	// original batch position, with the entry's own sentinel inside.
	steps, err := r.PutSteps([]labbase.StepSpec{
		{Class: "wash", ValidTime: 1, Materials: []storage.OID{a}},
		{Class: "wash", ValidTime: 2, Materials: []storage.OID{b}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.PutSteps([]labbase.StepSpec{
		{Class: "wash", ValidTime: 3, Materials: []storage.OID{a}},
		{Class: "wash", ValidTime: 4, Materials: []storage.OID{steps[1]}},
	})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("bad batch = %v, want *shard.BatchError", err)
	}
	if be.Index != 1 {
		t.Errorf("BatchError.Index = %d, want 1 (re-stitched original position)", be.Index)
	}
	if !errors.Is(err, labbase.ErrNotMaterial) {
		t.Errorf("batch error chain = %v, want ErrNotMaterial inside", err)
	}
}

// TestRouterRefusesMismatchedTopology: a server advertising a different
// shard identity than the topology assigns it must be refused at open.
func TestRouterRefusesMismatchedTopology(t *testing.T) {
	m, err := OpenMember(memstore.Open("cluster-mm"), 1, 3, labbase.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	addr, stop := serveStore(t, m, "127.0.0.1:0")
	defer stop()

	// Shard 1-of-3 offered as a 1-server topology.
	if _, err := OpenRouter(Topology{Shards: []string{addr}}, RouterOptions{}); err == nil ||
		!strings.Contains(err.Error(), "topology mismatch") {
		t.Errorf("1-server topology over member 1/3 = %v, want topology mismatch", err)
	}

	// A plain DB (advertising 0 of 1) cannot join a 2-server topology.
	plain, err := labbase.Open(memstore.Open("cluster-mm"), labbase.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	paddr, pstop := serveStore(t, plain, "127.0.0.1:0")
	defer pstop()
	if _, err := OpenRouter(Topology{Shards: []string{paddr, paddr}}, RouterOptions{}); err == nil ||
		!strings.Contains(err.Error(), "topology mismatch") {
		t.Errorf("2-server topology over plain DBs = %v, want topology mismatch", err)
	}
}

// TestRouterRefusesMixedStores: the store fingerprint in the handshake
// must agree across shards, or the shard map is not one database.
func TestRouterRefusesMixedStores(t *testing.T) {
	topo := Topology{Shards: make([]string, 2)}
	for k, name := range []string{"alpha-mm", "beta-mm"} {
		m, err := OpenMember(memstore.Open(name), k, 2, labbase.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		addr, stop := serveStore(t, m, "127.0.0.1:0")
		t.Cleanup(stop)
		topo.Shards[k] = addr
	}
	if _, err := OpenRouter(topo, RouterOptions{}); err == nil ||
		!strings.Contains(err.Error(), "store mismatch") {
		t.Errorf("mixed-store topology = %v, want store mismatch", err)
	}
}

// TestRouterDeadShardFailsFast kills one shard server mid-flight: every
// operation touching it must fail fast with ErrShardDown naming the shard
// (no hangs, nothing applied elsewhere), and the health monitor must
// re-admit the shard once its server is back on the same address.
func TestRouterDeadShardFailsFast(t *testing.T) {
	const n = 2
	members := make([]*Member, n)
	stops := make([]func(), n)
	topo := Topology{Shards: make([]string, n)}
	for k := 0; k < n; k++ {
		m, err := OpenMember(memstore.Open("cluster-mm"), k, n, labbase.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		members[k] = m
		t.Cleanup(func() { m.Close() })
		topo.Shards[k], stops[k] = serveStore(t, m, "127.0.0.1:0")
	}
	defer stops[0]()
	r := openTestRouter(t, topo, RouterOptions{HealthInterval: 10 * time.Millisecond})

	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DefineMaterialClass("sample", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DefineState("received"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.DefineStepClass("wash", nil); err != nil {
		t.Fatal(err)
	}
	var live []storage.OID
	for i := 0; len(live) < 4; i++ {
		name := fmt.Sprintf("m-%d", i)
		oid, err := r.CreateMaterial("sample", name, "received", int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if ShardFor(name, n) == 0 {
			live = append(live, oid)
		}
	}
	onLive := live[0]
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	liveSteps, err := r.CountSteps("wash")
	if err != nil || liveSteps != 0 {
		t.Fatalf("baseline CountSteps = %d, %v", liveSteps, err)
	}

	// Kill shard 1 and wait for the router to notice.
	stops[1]()
	deadline := time.After(5 * time.Second)
	for {
		_, err := r.CountMaterials("sample")
		if errors.Is(err, ErrShardDown) {
			if !strings.Contains(err.Error(), "shard 1") {
				t.Fatalf("down error does not name the shard: %v", err)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("router never reported ErrShardDown; last err: %v", err)
		case <-time.After(5 * time.Millisecond):
		}
	}

	// A fan-out batch touching the dead shard is rejected whole — nothing
	// lands on the live shard either.
	bad := make([]labbase.StepSpec, 0, len(live))
	for i, oid := range live {
		bad = append(bad, labbase.StepSpec{Class: "wash", ValidTime: int64(i), Materials: []storage.OID{oid}})
	}
	// Address one entry to the dead shard via a synthetic OID tag.
	deadOID := withShard(withoutShard(bad[3].Materials[0]), 1)
	bad[3].Materials = []storage.OID{deadOID}
	if _, err := r.PutSteps(bad); !errors.Is(err, ErrShardDown) {
		t.Fatalf("batch over dead shard = %v, want ErrShardDown", err)
	}
	if got, err := members[0].CountSteps("wash"); err != nil || got != 0 {
		t.Fatalf("live shard recorded %d steps from a rejected batch (err=%v), want 0", got, err)
	}
	// Routed single-shard traffic to the live shard keeps flowing.
	if _, err := r.State(onLive); err != nil {
		t.Fatalf("live-shard read during outage: %v", err)
	}

	// Revive shard 1 on its old address; the health monitor re-admits it.
	addr1, stop1 := serveStore(t, members[1], topo.Shards[1])
	defer stop1()
	if addr1 != topo.Shards[1] {
		t.Fatalf("revived server bound %s, want %s", addr1, topo.Shards[1])
	}
	deadline = time.After(5 * time.Second)
	for {
		if _, err := r.CountMaterials("sample"); err == nil {
			break
		}
		select {
		case <-deadline:
			t.Fatal("router never re-admitted the revived shard")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestRouterMetrics: the router's per-shard histograms and fan-out
// counters must record the traffic the workload actually generated.
func TestRouterMetrics(t *testing.T) {
	const n = 3
	topo, _ := startCluster(t, n)
	r := openTestRouter(t, topo, RouterOptions{HealthInterval: -1})
	identityWorkload(r, n)

	st := r.Metrics()
	if len(st.PerShard) != n {
		t.Fatalf("PerShard has %d histograms, want %d", len(st.PerShard), n)
	}
	for k := range st.PerShard {
		if st.PerShard[k].Count() == 0 {
			t.Errorf("shard %d histogram empty; every shard saw traffic", k)
		}
	}
	if st.Fanouts[n] == 0 {
		t.Errorf("no %d-wide fan-outs recorded: %v", n, st.Fanouts)
	}
}

// TestRouterConcurrentReads races scattered and routed reads with
// out-of-bracket PutSteps writers through one Router — the -race proof
// that the pool checkout and metrics paths are safe under fan-out.
func TestRouterConcurrentReads(t *testing.T) {
	const n = 2
	topo, _ := startCluster(t, n)
	r := openTestRouter(t, topo, RouterOptions{})

	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DefineMaterialClass("sample", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DefineState("received"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DefineAttr("cycles", labbase.KindInt); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.DefineStepClass("wash", []labbase.AttrDef{{Name: "cycles", Kind: labbase.KindInt}}); err != nil {
		t.Fatal(err)
	}
	const mats = 12
	oids := make([]storage.OID, mats)
	for i := range oids {
		oid, err := r.CreateMaterial("sample", fmt.Sprintf("m-%d", i), "received", int64(i))
		if err != nil {
			t.Fatal(err)
		}
		oids[i] = oid
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}

	const (
		writers = 3
		readers = 4
		rounds  = 20
	)
	var wg sync.WaitGroup
	errs := make([]error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < rounds; b++ {
				specs := make([]labbase.StepSpec, 4)
				for i := range specs {
					specs[i] = labbase.StepSpec{
						Class:     "wash",
						ValidTime: int64(w*100000 + b*100 + i),
						Materials: []storage.OID{oids[(w*7+b*3+i)%mats]},
						Attrs:     []labbase.AttrValue{{Name: "cycles", Value: labbase.Int64(int64(b))}},
					}
				}
				if _, err := r.PutSteps(specs); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < rounds; b++ {
				if _, err := r.CountMaterials("sample"); err != nil {
					errs[writers+g] = err
					return
				}
				if _, err := r.History(oids[(g+b)%mats]); err != nil {
					errs[writers+g] = err
					return
				}
				if _, _, _, err := r.MostRecentScan(oids[(g*5+b)%mats], "cycles"); err != nil {
					errs[writers+g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	total, err := r.CountSteps("wash")
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(writers * rounds * 4); total != want {
		t.Fatalf("CountSteps = %d, want %d", total, want)
	}
}
