package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Topology is the cluster shard map: shard k of the OID space lives behind
// Shards[k]. The on-disk JSON form is {"shards": ["host:port", ...]}, with
// an optional parallel {"standbys": [...]} naming each shard's warm
// standby ("" for none): a labbase-server -standby process receiving the
// primary's redo stream, which the router promotes when the primary dies.
type Topology struct {
	Shards   []string `json:"shards"`
	Standbys []string `json:"standbys,omitempty"`
}

// ParseTopology accepts either an inline address list
// ("host:port,host:port,...") or a path to a JSON topology file. The
// distinction is syntactic: an argument containing ':' is an address list,
// anything else is read as a file.
func ParseTopology(arg string) (Topology, error) {
	if arg == "" {
		return Topology{}, fmt.Errorf("shard: empty topology")
	}
	var t Topology
	if strings.Contains(arg, ":") {
		for _, a := range strings.Split(arg, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return Topology{}, fmt.Errorf("shard: empty address in topology %q", arg)
			}
			t.Shards = append(t.Shards, a)
		}
	} else {
		data, err := os.ReadFile(arg)
		if err != nil {
			return Topology{}, fmt.Errorf("shard: read topology: %w", err)
		}
		if err := json.Unmarshal(data, &t); err != nil {
			return Topology{}, fmt.Errorf("shard: parse topology %s: %w", arg, err)
		}
	}
	if n := len(t.Shards); n < 1 || n > MaxShards {
		return Topology{}, fmt.Errorf("shard: topology names %d shards, outside [1, %d]", len(t.Shards), MaxShards)
	}
	if len(t.Standbys) != 0 && len(t.Standbys) != len(t.Shards) {
		return Topology{}, fmt.Errorf("shard: topology names %d standbys for %d shards", len(t.Standbys), len(t.Shards))
	}
	return t, nil
}
