package shard

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"labflow/internal/labbase"
	"labflow/internal/storage"
	"labflow/internal/storage/memstore"
)

func openShards(t *testing.T, n int) *DB {
	t.Helper()
	managers := make([]storage.Manager, n)
	for k := range managers {
		managers[k] = memstore.Open("test-mm")
	}
	db, err := Open(managers, labbase.DefaultOptions())
	if err != nil {
		t.Fatalf("Open(%d shards): %v", n, err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func begin(t *testing.T, db labbase.Store) {
	t.Helper()
	if err := db.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
}

func commit(t *testing.T, db labbase.Store) {
	t.Helper()
	if err := db.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

// nameOnShard returns a material name that ShardFor routes to the wanted
// shard, by deterministic probing.
func nameOnShard(t *testing.T, want, shards int, tag string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		name := fmt.Sprintf("%s-%d", tag, i)
		if ShardFor(name, shards) == want {
			return name
		}
	}
	t.Fatalf("no probe name found for shard %d/%d", want, shards)
	return ""
}

func TestOIDShardEncoding(t *testing.T) {
	for _, k := range []int{0, 1, 7, MaxShards - 1} {
		local := storage.MakeOID(3, 12345)
		global := withShard(local, k)
		if got := ShardOfOID(global); got != k {
			t.Fatalf("ShardOfOID(withShard(%v, %d)) = %d", local, k, got)
		}
		if got := withoutShard(global); got != local {
			t.Fatalf("withoutShard round trip: got %v want %v", got, local)
		}
		if global.Segment() != local.Segment() {
			t.Fatalf("shard bits leaked into segment: %v", global)
		}
	}
	// Shard 0 is the identity encoding: the byte-identity guarantee.
	local := storage.MakeOID(2, 99)
	if withShard(local, 0) != local {
		t.Fatalf("shard 0 encoding not identity")
	}
}

func TestMapperRejectsForeignOIDs(t *testing.T) {
	m := &mapper{inner: memstore.Open("test-mm"), shard: 1}
	defer m.Close()
	if err := m.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	oid, err := m.Allocate(1, []byte("x"))
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if got := ShardOfOID(oid); got != 1 {
		t.Fatalf("allocated OID on shard %d, want 1", got)
	}
	if _, err := m.Read(oid); err != nil {
		t.Fatalf("Read own OID: %v", err)
	}
	foreign := withShard(withoutShard(oid), 2)
	if _, err := m.Read(foreign); !errors.Is(err, storage.ErrNoSuchObject) {
		t.Fatalf("Read foreign OID: err = %v, want ErrNoSuchObject", err)
	}
	if err := m.Write(foreign, []byte("y")); !errors.Is(err, storage.ErrNoSuchObject) {
		t.Fatalf("Write foreign OID: err = %v, want ErrNoSuchObject", err)
	}
	if _, err := m.AllocateNear(foreign, []byte("z")); !errors.Is(err, storage.ErrNoSuchObject) {
		t.Fatalf("AllocateNear foreign anchor: err = %v, want ErrNoSuchObject", err)
	}
}

// loadWorkload drives the same shard-safe logical workload (single-material
// steps, as lfload issues) into any store: mats materials, one typed
// schema, steps recorded both through the txn bracket and through PutSteps.
func loadWorkload(t *testing.T, db labbase.Store, mats int) []string {
	t.Helper()
	begin(t, db)
	if _, err := db.DefineMaterialClass("sample", ""); err != nil {
		t.Fatalf("DefineMaterialClass: %v", err)
	}
	for _, s := range []string{"received", "measured", "done"} {
		if _, err := db.DefineState(s); err != nil {
			t.Fatalf("DefineState: %v", err)
		}
	}
	if _, _, err := db.DefineStepClass("measure", []labbase.AttrDef{
		{Name: "reading", Kind: labbase.KindInt},
	}); err != nil {
		t.Fatalf("DefineStepClass: %v", err)
	}
	names := make([]string, mats)
	for i := range names {
		names[i] = fmt.Sprintf("m-%d", i)
		if _, err := db.CreateMaterial("sample", names[i], "received", int64(i)); err != nil {
			t.Fatalf("CreateMaterial: %v", err)
		}
	}
	// Half the steps inside the bracket...
	for i := 0; i < mats; i++ {
		oid, ok := db.LookupMaterial(names[i])
		if !ok {
			t.Fatalf("LookupMaterial %q: missing", names[i])
		}
		if _, err := db.RecordStep(labbase.StepSpec{
			Class:     "measure",
			ValidTime: int64(1000 + i),
			Materials: []storage.OID{oid},
			Attrs:     []labbase.AttrValue{{Name: "reading", Value: labbase.Int64(int64(i))}},
		}); err != nil {
			t.Fatalf("RecordStep: %v", err)
		}
	}
	commit(t, db)
	// ...and half through own-transaction PutSteps batches, including an
	// implicitly evolved attr set (exercises the cross-shard schema
	// broadcast on sharded stores).
	var specs []labbase.StepSpec
	for i := 0; i < mats; i++ {
		oid, _ := db.LookupMaterial(names[i])
		specs = append(specs, labbase.StepSpec{
			Class:     "measure",
			ValidTime: int64(2000 + i),
			Materials: []storage.OID{oid},
			Attrs: []labbase.AttrValue{
				{Name: "reading", Value: labbase.Int64(int64(10 * i))},
				{Name: "grade", Value: labbase.String(fmt.Sprintf("g%d", i%3))},
			},
		})
	}
	if _, err := db.PutSteps(specs); err != nil {
		t.Fatalf("PutSteps: %v", err)
	}
	// Move a third of the materials on.
	begin(t, db)
	for i := 0; i < mats; i += 3 {
		oid, _ := db.LookupMaterial(names[i])
		if err := db.SetState(oid, "measured"); err != nil {
			t.Fatalf("SetState: %v", err)
		}
	}
	commit(t, db)
	return names
}

// snapshot captures every observable read-side result keyed by material
// name (never OID), so stores with different shard counts are comparable.
type snapshot struct {
	classes   []string
	states    []string
	stepCls   []string
	versions  [][]string
	inState   map[string][]string // state -> sorted material names
	counts    map[string]uint64
	materials map[string]labbase.Material // keyed by name, OID zeroed
	recent    map[string]int64            // name -> most-recent "reading"
	histLen   map[string]int
	dump      labbase.DumpStats
}

func snap(t *testing.T, db labbase.Store, names []string) *snapshot {
	t.Helper()
	s := &snapshot{
		inState:   map[string][]string{},
		counts:    map[string]uint64{},
		materials: map[string]labbase.Material{},
		recent:    map[string]int64{},
		histLen:   map[string]int{},
	}
	s.classes = db.MaterialClasses()
	s.states = db.States()
	s.stepCls = db.StepClasses()
	var err error
	s.versions, err = db.StepClassVersions("measure")
	if err != nil {
		t.Fatalf("StepClassVersions: %v", err)
	}
	oidName := map[storage.OID]string{}
	for _, name := range names {
		oid, ok := db.LookupMaterial(name)
		if !ok {
			t.Fatalf("LookupMaterial %q: missing", name)
		}
		oidName[oid] = name
		m, err := db.GetMaterial(oid)
		if err != nil {
			t.Fatalf("GetMaterial %q: %v", name, err)
		}
		mm := *m
		mm.OID = 0
		s.materials[name] = mm
		v, _, found, err := db.MostRecent(oid, "reading")
		if err != nil || !found {
			t.Fatalf("MostRecent %q: found=%v err=%v", name, found, err)
		}
		s.recent[name] = v.Int
		h, err := db.History(oid)
		if err != nil {
			t.Fatalf("History %q: %v", name, err)
		}
		s.histLen[name] = len(h)
	}
	for _, st := range s.states {
		oids, err := db.MaterialsInState(st)
		if err != nil {
			t.Fatalf("MaterialsInState(%q): %v", st, err)
		}
		var got []string
		for _, oid := range oids {
			got = append(got, oidName[oid])
		}
		sort.Strings(got)
		s.inState[st] = got
		c, err := db.CountInState(st)
		if err != nil {
			t.Fatalf("CountInState(%q): %v", st, err)
		}
		s.counts["state:"+st] = c
	}
	cm, err := db.CountMaterials("sample")
	if err != nil {
		t.Fatalf("CountMaterials: %v", err)
	}
	s.counts["materials"] = cm
	cs, err := db.CountSteps("measure")
	if err != nil {
		t.Fatalf("CountSteps: %v", err)
	}
	s.counts["steps"] = cs
	var scanned uint64
	if err := db.ScanAllMaterials(func(*labbase.Material) error { scanned++; return nil }); err != nil {
		t.Fatalf("ScanAllMaterials: %v", err)
	}
	s.counts["scanned"] = scanned
	var stepScan uint64
	if err := db.ScanSteps("measure", func(*labbase.Step) error { stepScan++; return nil }); err != nil {
		t.Fatalf("ScanSteps: %v", err)
	}
	s.counts["stepScan"] = stepScan
	s.dump, err = db.Dump()
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	return s
}

// TestScatterGatherMatchesOneShard is the read-equivalence acceptance
// test: the same logical workload on 1 shard and on 4 shards yields
// identical scatter-gather results (keyed by name, the shard-independent
// identity).
func TestScatterGatherMatchesOneShard(t *testing.T) {
	one := openShards(t, 1)
	four := openShards(t, 4)
	const mats = 60
	names := loadWorkload(t, one, mats)
	if got := loadWorkload(t, four, mats); !reflect.DeepEqual(got, names) {
		t.Fatalf("workload names diverged")
	}
	// The workload must actually span shards for the test to mean much.
	used := map[int]bool{}
	for _, n := range names {
		used[ShardFor(n, 4)] = true
	}
	if len(used) < 3 {
		t.Fatalf("workload only touched shards %v", used)
	}
	s1 := snap(t, one, names)
	s4 := snap(t, four, names)
	if !reflect.DeepEqual(s1, s4) {
		t.Fatalf("snapshots differ:\n1-shard: %+v\n4-shard: %+v", s1, s4)
	}
}

// TestMaterialsInStateSorted pins the merge rule: concatenating per-shard
// OID-sorted lists in shard order is globally OID-sorted, because the
// shard number lives above the index bits.
func TestMaterialsInStateSorted(t *testing.T) {
	db := openShards(t, 4)
	loadWorkload(t, db, 40)
	oids, err := db.MaterialsInState("received")
	if err != nil {
		t.Fatalf("MaterialsInState: %v", err)
	}
	if len(oids) == 0 {
		t.Fatal("no materials in state")
	}
	for i := 1; i < len(oids); i++ {
		if oids[i-1] >= oids[i] {
			t.Fatalf("result not strictly OID-sorted at %d: %v >= %v", i, oids[i-1], oids[i])
		}
	}
}

// TestCatalogIdenticalAcrossShards asserts the broadcast invariant: after
// a workload with both explicit Define* and implicit schema evolution,
// every shard holds an identical catalog, and defining an existing name on
// any shard returns the same ID everywhere.
func TestCatalogIdenticalAcrossShards(t *testing.T) {
	db := openShards(t, 4)
	loadWorkload(t, db, 40)
	ref := db.Shard(0)
	for k := 1; k < db.Shards(); k++ {
		sh := db.Shard(k)
		if got, want := sh.MaterialClasses(), ref.MaterialClasses(); !reflect.DeepEqual(got, want) {
			t.Fatalf("shard %d material classes %v != shard 0 %v", k, got, want)
		}
		if got, want := sh.States(), ref.States(); !reflect.DeepEqual(got, want) {
			t.Fatalf("shard %d states %v != shard 0 %v", k, got, want)
		}
		if got, want := sh.StepClasses(), ref.StepClasses(); !reflect.DeepEqual(got, want) {
			t.Fatalf("shard %d step classes %v != shard 0 %v", k, got, want)
		}
		for _, sc := range ref.StepClasses() {
			want, err := ref.StepClassVersions(sc)
			if err != nil {
				t.Fatalf("shard 0 versions(%q): %v", sc, err)
			}
			got, err := sh.StepClassVersions(sc)
			if err != nil {
				t.Fatalf("shard %d versions(%q): %v", k, sc, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shard %d versions(%q) %v != shard 0 %v", k, sc, got, want)
			}
		}
	}
	// Redefinition returns identical IDs on every shard.
	begin(t, db)
	defer commit(t, db)
	var want labbase.AttrID
	for k := 0; k < db.Shards(); k++ {
		id, err := db.Shard(k).DefineAttr("reading", labbase.KindInt)
		if err != nil {
			t.Fatalf("shard %d DefineAttr: %v", k, err)
		}
		if k == 0 {
			want = id
		} else if id != want {
			t.Fatalf("shard %d attr ID %d != shard 0 %d", k, id, want)
		}
	}
}

// TestCrossShardRejected pins the single-partition contract.
func TestCrossShardRejected(t *testing.T) {
	db := openShards(t, 4)
	begin(t, db)
	if _, err := db.DefineMaterialClass("sample", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineState("received"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.DefineStepClass("measure", nil); err != nil {
		t.Fatal(err)
	}
	n0 := nameOnShard(t, 0, 4, "x")
	n1 := nameOnShard(t, 1, 4, "x")
	a, err := db.CreateMaterial("sample", n0, "received", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.CreateMaterial("sample", n1, "received", 1)
	if err != nil {
		t.Fatal(err)
	}
	if ShardOfOID(a) == ShardOfOID(b) {
		t.Fatalf("probe materials landed on one shard")
	}
	if _, err := db.CreateMaterialSet([]storage.OID{a, b}); !errors.Is(err, ErrCrossShard) {
		t.Fatalf("cross-shard set: err = %v, want ErrCrossShard", err)
	}
	if _, err := db.RecordStep(labbase.StepSpec{
		Class: "measure", ValidTime: 5, Materials: []storage.OID{a, b},
	}); !errors.Is(err, ErrCrossShard) {
		t.Fatalf("cross-shard step: err = %v, want ErrCrossShard", err)
	}
	commit(t, db)

	// A batch with a cross-shard entry is rejected whole, before anything
	// applies, and the error carries the entry index.
	before, err := db.CountSteps("measure")
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.PutSteps([]labbase.StepSpec{
		{Class: "measure", ValidTime: 6, Materials: []storage.OID{a}},
		{Class: "measure", ValidTime: 7, Materials: []storage.OID{a, b}},
	})
	if !errors.Is(err, ErrCrossShard) || !strings.Contains(err.Error(), "entry 1") {
		t.Fatalf("batch with cross-shard entry: err = %v, want ErrCrossShard naming entry 1", err)
	}
	after, err := db.CountSteps("measure")
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("rejected batch applied %d steps", after-before)
	}

	// A wrong-shard OID smuggled past routing (same-shard by bits but
	// unknown shard number) fails as a missing object.
	bogus := withShard(withoutShard(a), 9)
	if _, err := db.GetMaterial(bogus); !errors.Is(err, storage.ErrNoSuchObject) {
		t.Fatalf("out-of-range shard OID: err = %v, want ErrNoSuchObject", err)
	}
}

// TestPutStepsPerShardErrorIndex pins the cross-shard atomicity contract:
// the failing entry's original index is reported, and entries grouped onto
// other shards commit regardless.
func TestPutStepsPerShardErrorIndex(t *testing.T) {
	db := openShards(t, 2)
	begin(t, db)
	if _, err := db.DefineMaterialClass("sample", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineState("received"); err != nil {
		t.Fatal(err)
	}
	// A strictly typed attr makes a later string-valued step fail at
	// record time, after routing and schema checks pass.
	if _, _, err := db.DefineStepClass("measure", []labbase.AttrDef{
		{Name: "reading", Kind: labbase.KindInt},
	}); err != nil {
		t.Fatal(err)
	}
	n0 := nameOnShard(t, 0, 2, "y")
	n1 := nameOnShard(t, 1, 2, "y")
	a, err := db.CreateMaterial("sample", n0, "received", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.CreateMaterial("sample", n1, "received", 1)
	if err != nil {
		t.Fatal(err)
	}
	commit(t, db)

	_, err = db.PutSteps([]labbase.StepSpec{
		{Class: "measure", ValidTime: 1, Materials: []storage.OID{a},
			Attrs: []labbase.AttrValue{{Name: "reading", Value: labbase.Int64(1)}}},
		{Class: "measure", ValidTime: 2, Materials: []storage.OID{b},
			Attrs: []labbase.AttrValue{{Name: "reading", Value: labbase.String("bad")}}},
		{Class: "measure", ValidTime: 3, Materials: []storage.OID{a},
			Attrs: []labbase.AttrValue{{Name: "reading", Value: labbase.Int64(3)}}},
	})
	if err == nil || !strings.Contains(err.Error(), "entry 1") {
		t.Fatalf("err = %v, want failure naming entry 1", err)
	}
	if !errors.Is(err, labbase.ErrKindMismatch) {
		t.Fatalf("err = %v, want ErrKindMismatch in chain", err)
	}
	// Shard 0's group (entries 0 and 2) committed; shard 1's did not.
	ha, err := db.History(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(ha) != 2 {
		t.Fatalf("material a history = %d entries, want 2 (its shard's group committed)", len(ha))
	}
	hb, err := db.History(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(hb) != 0 {
		t.Fatalf("material b history = %d entries, want 0 (its entry failed)", len(hb))
	}
}

// TestPutStepsConcurrent hammers out-of-transaction PutSteps from many
// goroutines (the wire server's shared-lock path) and verifies the total.
// Run under -race this is the fan-out safety test.
func TestPutStepsConcurrent(t *testing.T) {
	db := openShards(t, 4)
	const mats = 32
	names := make([]string, mats)
	oids := make([]storage.OID, mats)
	begin(t, db)
	if _, err := db.DefineMaterialClass("sample", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineState("received"); err != nil {
		t.Fatal(err)
	}
	for i := range names {
		names[i] = fmt.Sprintf("c-%d", i)
		oid, err := db.CreateMaterial("sample", names[i], "received", int64(i))
		if err != nil {
			t.Fatal(err)
		}
		oids[i] = oid
	}
	commit(t, db)

	const (
		workers = 8
		batches = 20
		perB    = 16
	)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				specs := make([]labbase.StepSpec, perB)
				for i := range specs {
					m := (w*31 + b*7 + i) % mats
					specs[i] = labbase.StepSpec{
						Class:     "measure",
						ValidTime: int64(w*1000000 + b*1000 + i),
						Materials: []storage.OID{oids[m]},
						Attrs:     []labbase.AttrValue{{Name: "reading", Value: labbase.Int64(int64(i))}},
					}
				}
				if _, err := db.PutSteps(specs); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	got, err := db.CountSteps("measure")
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(workers * batches * perB); got != want {
		t.Fatalf("CountSteps = %d, want %d", got, want)
	}
	var histTotal int
	for _, oid := range oids {
		h, err := db.History(oid)
		if err != nil {
			t.Fatal(err)
		}
		histTotal += len(h)
	}
	if want := workers * batches * perB; histTotal != want {
		t.Fatalf("sum of history lengths = %d, want %d", histTotal, want)
	}
}

// TestShardForDeterministic pins the routing hash: it is part of the
// on-disk contract, so a change would orphan existing shards.
func TestShardForDeterministic(t *testing.T) {
	cases := map[string]int{}
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("m-%d", i)
		cases[name] = ShardFor(name, 4)
	}
	for name, want := range cases {
		if got := ShardFor(name, 4); got != want {
			t.Fatalf("ShardFor(%q) unstable: %d then %d", name, want, got)
		}
	}
	if ShardFor("anything", 1) != 0 {
		t.Fatal("1-shard routing must be 0")
	}
}
