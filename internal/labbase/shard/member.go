package shard

import (
	"fmt"

	"labflow/internal/labbase"
	"labflow/internal/storage"
)

// Member is one shard of a distributed LabBase cluster: a plain labbase.DB
// over a shard-tagging OID mapper, plus the topology identity
// (index/count) it advertises to routers through the wire handshake
// (OpShardInfo). A labbase-server started with -shard k/n serves a Member,
// and a shard.Router fronts N such servers exactly as the in-process DB
// facade fronts N inner labbase.DBs — same OID tagging, same routing, same
// error bytes.
//
// The Member trusts the router for routing but verifies what it cheaply
// can: CreateMaterial re-hashes the name and rejects a misroute with an
// ErrCrossShard-class error (a silent misroute there would mint the
// material on the wrong shard, corrupting the name→shard contract), and
// every OID-addressed operation rejects OIDs tagged for another shard
// through the mapper's untag check.
type Member struct {
	*labbase.DB
	index int
	count int
}

var _ labbase.Store = (*Member)(nil)

// OpenMember opens shard index of count over one storage manager (taking
// ownership of it, as Open does).
func OpenMember(sm storage.Manager, index, count int, opts labbase.Options) (*Member, error) {
	if count < 1 || count > MaxShards || index < 0 || index >= count {
		sm.Close()
		return nil, fmt.Errorf("shard: member %d/%d outside shard space [0, %d)", index, count, MaxShards)
	}
	inner, err := labbase.Open(&mapper{inner: sm, shard: index}, opts)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", index, err)
	}
	return &Member{DB: inner, index: index, count: count}, nil
}

// ShardInfo reports the member's topology identity; the wire server
// forwards it in the OpShardInfo handshake.
func (m *Member) ShardInfo() (index, count int) { return m.index, m.count }

// CreateMaterial rejects names whose hash routes to a different shard
// before creating anything — the one misroute the OID mapper cannot catch,
// because creation mints a fresh OID on whichever shard executes it.
func (m *Member) CreateMaterial(class, name, state string, validTime int64) (storage.OID, error) {
	if k := ShardFor(name, m.count); k != m.index {
		return storage.NilOID, fmt.Errorf("%w: material %q routes to shard %d, not this server's shard %d",
			ErrCrossShard, name, k, m.index)
	}
	return m.DB.CreateMaterial(class, name, state, validTime)
}
