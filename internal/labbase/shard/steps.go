package shard

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"labflow/internal/labbase"
	"labflow/internal/storage"
)

// PutSteps applies a batch of steps with one transaction per touched
// shard, the per-shard groups running concurrently. The returned OIDs are
// stitched back into request order.
//
// Atomicity contract (the sharded refinement of labbase.DB.PutSteps'):
//   - Routing is pre-validated: a cross-shard or unroutable spec rejects
//     the whole batch before anything is applied, with the entry index.
//   - Each touched shard applies its entries in one transaction — atomic
//     per shard.
//   - Across shards the batch is non-atomic: a failure on one shard does
//     not roll back the others, and its error names the first failing
//     original batch index on that shard.
//
// Called inside a broadcast Begin/Commit bracket, the batch instead joins
// that transaction sequentially (no fan-out, no extra commits), matching
// labbase.DB.PutSteps.
func (db *DB) PutSteps(specs []labbase.StepSpec) ([]storage.OID, error) {
	if len(db.shards) == 1 {
		// One shard: delegate whole (labbase.DB.PutSteps joins an open
		// bracket or owns its transaction, with identical error bytes to a
		// plain DB); wmu[0] provides the concurrent-caller serialization.
		db.wmu[0].Lock()
		defer db.wmu[0].Unlock()
		return db.shards[0].PutSteps(specs)
	}
	if db.InTxn() {
		oids := make([]storage.OID, len(specs))
		for i, spec := range specs {
			oid, err := db.RecordStep(spec)
			if err != nil {
				return nil, fmt.Errorf("shard: step batch entry %d (earlier entries recorded): %w", i, err)
			}
			oids[i] = oid
		}
		return oids, nil
	}

	if err := db.ensureStepSchema(specs); err != nil {
		return nil, err
	}

	// Pre-validate and group by home shard; nothing has been applied yet,
	// so any routing failure rejects the whole batch.
	n := len(db.shards)
	idxs := make([][]int, n)
	parts := make([][]labbase.StepSpec, n)
	for i, spec := range specs {
		home, err := db.routeStep(spec)
		if err != nil {
			return nil, fmt.Errorf("shard: step batch entry %d (batch rejected, nothing recorded): %w", i, err)
		}
		idxs[home] = append(idxs[home], i)
		parts[home] = append(parts[home], spec)
	}

	// Fan out: one goroutine per touched shard, each writing only its own
	// oids slots (the index sets are disjoint) and its own errs slot.
	oids := make([]storage.OID, len(specs))
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		if len(idxs[k]) == 0 {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = db.applyShardBatch(k, parts[k], idxs[k], oids)
		}(k)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return oids, nil
}

// BatchError reports a PutSteps failure at a specific entry of a sharded
// batch: the failing shard committed the entries before Index it owned,
// other shards committed all of theirs, and nothing from Index on landed
// on shard Shard. A type (not a formatted string) so the distributed
// Router can re-stitch part-local indexes back into original batch
// positions while keeping error bytes identical to the in-process facade.
type BatchError struct {
	Index int   // position of the failing entry in the original batch
	Shard int   // shard whose sub-batch failed
	Err   error // the entry's own error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("shard: step batch entry %d (earlier entries on shard %d recorded, other shards unaffected): %v",
		e.Index, e.Shard, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// applyShardBatch runs one shard's slice of a batch in one transaction,
// under that shard's write lock.
func (db *DB) applyShardBatch(k int, specs []labbase.StepSpec, idx []int, oids []storage.OID) error {
	db.wmu[k].Lock()
	defer db.wmu[k].Unlock()
	sh := db.shards[k]
	if err := sh.Begin(); err != nil {
		return fmt.Errorf("shard %d: %w", k, err)
	}
	var ferr error
	for j, spec := range specs {
		oid, err := sh.RecordStep(spec)
		if err != nil {
			ferr = &BatchError{Index: idx[j], Shard: k, Err: err}
			break
		}
		oids[idx[j]] = oid
	}
	if cerr := sh.Commit(); cerr != nil {
		return errors.Join(ferr, fmt.Errorf("shard %d: commit: %w", k, cerr))
	}
	return ferr
}

// ensureStepSchema pre-broadcasts the step classes, attributes and
// versions a batch would create implicitly, so implicit schema evolution
// cannot diverge the shards' catalogs (each shard would otherwise mint the
// new IDs only on a step's home shard). It reproduces exactly what
// labbase's implicit path would do: DefineStepClass with the spec's attr
// names, in spec order, duplicates included (the version key is the
// sorted attr-ID multiset), each attribute KindAny — the kind implicit
// evolution uses, compatible with any later typed definition.
//
// No-op on a single shard (there is nothing to diverge from, preserving
// byte-identity with a plain DB) and in strict-schema modes, where the
// implicit path is disabled and Define* must have been broadcast already.
func (db *DB) ensureStepSchema(specs []labbase.StepSpec) error {
	if len(db.shards) == 1 || !db.opts.ImplicitVersions || !db.opts.ImplicitAttrs {
		return nil
	}
	db.stmu.Lock()
	defer db.stmu.Unlock()
	for _, spec := range specs {
		key := schemaKey(spec)
		if _, ok := db.known[key]; ok {
			continue
		}
		if !db.versionExists(spec) {
			if err := db.broadcastStepSchemaLocked(spec); err != nil {
				return err
			}
		}
		db.known[key] = struct{}{}
	}
	return nil
}

// schemaKey identifies a (class, attr-name multiset) schema shape.
func schemaKey(spec labbase.StepSpec) string {
	names := attrNames(spec)
	return spec.Class + "\x00" + strings.Join(names, "\x00")
}

// attrNames returns the spec's attribute names sorted, duplicates kept.
func attrNames(spec labbase.StepSpec) []string {
	names := make([]string, len(spec.Attrs))
	for i, av := range spec.Attrs {
		names[i] = av.Name
	}
	sort.Strings(names)
	return names
}

// versionExists reports whether shard 0 already has a version of the
// spec's class with exactly the spec's attr-name multiset (attr names map
// 1:1 to attr IDs, so name-multiset equality is ID-multiset equality —
// the key stepVersionLocked uses). Shard 0 stands for all shards: the
// broadcast discipline keeps the catalogs identical.
func (db *DB) versionExists(spec labbase.StepSpec) bool {
	vers, err := db.shards[0].StepClassVersions(spec.Class)
	if err != nil {
		return false // unknown class: everything needs defining
	}
	return versionListed(vers, spec)
}

// versionListed reports whether one of a class's version attr-name lists
// matches the spec's attr-name multiset; shared with the distributed
// Router's schema-ensure pass.
func versionListed(vers [][]string, spec labbase.StepSpec) bool {
	want := attrNames(spec)
	for _, v := range vers {
		if len(v) != len(want) {
			continue
		}
		got := append([]string(nil), v...)
		sort.Strings(got)
		match := true
		for i := range got {
			if got[i] != want[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// broadcastStepSchemaLocked defines the spec's class/attrs/version on
// every shard, asserting ID agreement. Caller holds stmu. Inside the
// broadcast write bracket the definitions join it; outside, each shard
// gets its own short transaction under its write lock.
func (db *DB) broadcastStepSchemaLocked(spec labbase.StepSpec) error {
	attrs := make([]labbase.AttrDef, len(spec.Attrs))
	for i, av := range spec.Attrs {
		attrs[i] = labbase.AttrDef{Name: av.Name, Kind: labbase.KindAny}
	}
	if db.inTxn {
		_, err := broadcast(db, "step class", spec.Class, func(sh *labbase.DB) (idVer, error) {
			id, ver, err := sh.DefineStepClass(spec.Class, attrs)
			return idVer{id, ver}, err
		})
		return err
	}
	var first idVer
	for k, sh := range db.shards {
		got, err := db.defineStepClassOwnTxn(k, sh, spec.Class, attrs)
		if err != nil {
			return err
		}
		if k == 0 {
			first = got
		} else if got != first {
			return fmt.Errorf("shard: catalog divergence: step class %q is %v on shard %d, %v on shard 0",
				spec.Class, got, k, first)
		}
	}
	return nil
}

// idVer pairs DefineStepClass's results for the broadcast ID check.
type idVer struct {
	id  labbase.StepClassID
	ver labbase.Version
}

// defineStepClassOwnTxn runs one shard's definition in its own write
// bracket under the shard's write lock.
func (db *DB) defineStepClassOwnTxn(k int, sh *labbase.DB, class string, attrs []labbase.AttrDef) (idVer, error) {
	db.wmu[k].Lock()
	defer db.wmu[k].Unlock()
	if err := sh.Begin(); err != nil {
		return idVer{}, fmt.Errorf("shard %d: %w", k, err)
	}
	id, ver, derr := sh.DefineStepClass(class, attrs)
	if cerr := sh.Commit(); cerr != nil {
		return idVer{}, errors.Join(derr, fmt.Errorf("shard %d: commit: %w", k, cerr))
	}
	if derr != nil {
		return idVer{}, fmt.Errorf("shard %d: %w", k, derr)
	}
	return idVer{id, ver}, nil
}
