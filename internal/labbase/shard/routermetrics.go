package shard

import (
	"sync"
	"time"

	"labflow/internal/metrics"
)

// routerMetrics aggregates the router's observability counters: one
// latency histogram per shard (time spent in wire round-trips against that
// shard) and a fan-out width distribution (how many shards each
// multi-shard operation touched). metrics.Hist is deliberately not
// thread-safe, so the router wraps the histograms in one leaf mutex; the
// record path is a handful of array increments, far below the wire
// round-trips it measures.
type routerMetrics struct {
	mu        sync.Mutex
	perShard  []metrics.Hist
	fanouts   map[int]uint64
	failovers []uint64
}

func newRouterMetrics(shards int) *routerMetrics {
	return &routerMetrics{
		perShard:  make([]metrics.Hist, shards),
		fanouts:   make(map[int]uint64),
		failovers: make([]uint64, shards),
	}
}

// start begins timing one shard operation; the returned stop function
// records the elapsed time in the shard's histogram.
func (m *routerMetrics) start(k int) func() {
	begin := time.Now() //lint:allow wallclock latency measurement, reported not persisted
	return func() {
		d := time.Since(begin) //lint:allow wallclock latency measurement, reported not persisted
		m.mu.Lock()
		m.perShard[k].Record(d)
		m.mu.Unlock()
	}
}

// fanout records one multi-shard operation touching width shards.
func (m *routerMetrics) fanout(width int) {
	m.mu.Lock()
	m.fanouts[width]++
	m.mu.Unlock()
}

// failover records one standby promotion for shard k.
func (m *routerMetrics) failover(k int) {
	m.mu.Lock()
	m.failovers[k]++
	m.mu.Unlock()
}

// RouterStats is a point-in-time copy of a router's metrics.
type RouterStats struct {
	// PerShard holds one latency histogram per shard (round-trip time of
	// every wire operation the router issued to it).
	PerShard []metrics.Hist
	// Fanouts maps fan-out width (shards touched by one multi-shard
	// operation) to occurrence count.
	Fanouts map[int]uint64
	// Failovers counts standby promotions per shard (0 or 1 per shard per
	// router lifetime — failover is single-shot).
	Failovers []uint64
}

// snapshot copies the counters for reporting.
func (m *routerMetrics) snapshot() RouterStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := RouterStats{
		PerShard:  make([]metrics.Hist, len(m.perShard)),
		Fanouts:   make(map[int]uint64, len(m.fanouts)),
		Failovers: make([]uint64, len(m.failovers)),
	}
	copy(st.PerShard, m.perShard)
	for w, n := range m.fanouts {
		st.Fanouts[w] = n
	}
	copy(st.Failovers, m.failovers)
	return st
}
