package shard

import (
	"fmt"
	"sync"
	"testing"

	"labflow/internal/labbase"
	"labflow/internal/storage"
	"labflow/internal/storage/memstore"
)

// benchWriters measures PutSteps throughput with exactly `writers`
// concurrent goroutines over a shared store, each issuing fixed-size
// batches of single-material steps. Run against 1 shard it measures the
// serialized write path (the pre-PR baseline modulo facade overhead);
// against 4 shards the batches fan out per home shard. On a single-core
// host the shard split buys batching/commit amortization per shard, not
// CPU parallelism — see EXPERIMENTS.md P3 for the honest attribution.
func benchWriters(b *testing.B, shards, writers int) {
	const batch = 16
	managers := make([]storage.Manager, shards)
	for k := range managers {
		managers[k] = memstore.Open("bench-mm")
	}
	db, err := Open(managers, labbase.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()

	if err := db.Begin(); err != nil {
		b.Fatal(err)
	}
	if _, err := db.DefineMaterialClass("sample", ""); err != nil {
		b.Fatal(err)
	}
	if _, err := db.DefineState("received"); err != nil {
		b.Fatal(err)
	}
	if _, _, err := db.DefineStepClass("measure", []labbase.AttrDef{
		{Name: "reading", Kind: labbase.KindInt},
	}); err != nil {
		b.Fatal(err)
	}
	const mats = 256
	oids := make([]storage.OID, mats)
	for i := range oids {
		oid, err := db.CreateMaterial("sample", fmt.Sprintf("bench-%d", i), "received", int64(i))
		if err != nil {
			b.Fatal(err)
		}
		oids[i] = oid
	}
	if err := db.Commit(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Deterministic material walk, stride coprime to the pool size
			// so each writer touches every shard's materials.
			at := w * 31
			for done := 0; done < per; done += batch {
				n := batch
				if rem := per - done; rem < n {
					n = rem
				}
				specs := make([]labbase.StepSpec, n)
				for i := range specs {
					specs[i] = labbase.StepSpec{
						Class:     "measure",
						ValidTime: int64(w)<<32 | int64(done+i),
						Materials: []storage.OID{oids[(at+i*7)%mats]},
						Attrs:     []labbase.AttrValue{{Name: "reading", Value: labbase.Int64(int64(i))}},
					}
				}
				at += n * 7
				if _, err := db.PutSteps(specs); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkPutStepsWriters1(b *testing.B) {
	b.Run("shards=1", func(b *testing.B) { benchWriters(b, 1, 1) })
	b.Run("shards=4", func(b *testing.B) { benchWriters(b, 4, 1) })
}

func BenchmarkPutStepsWriters4(b *testing.B) {
	b.Run("shards=1", func(b *testing.B) { benchWriters(b, 1, 4) })
	b.Run("shards=4", func(b *testing.B) { benchWriters(b, 4, 4) })
}

func BenchmarkPutStepsWriters16(b *testing.B) {
	b.Run("shards=1", func(b *testing.B) { benchWriters(b, 1, 16) })
	b.Run("shards=4", func(b *testing.B) { benchWriters(b, 4, 16) })
}
