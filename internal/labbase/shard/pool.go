package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"labflow/internal/wire"
)

// ErrShardDown marks a shard server the router cannot reach. Operations
// that would touch the shard fail fast with an error naming it (and
// wrapping this sentinel) instead of re-dialing — and timing out — on
// every call; the router's health monitor keeps probing the address and
// lifts the mark when the server answers the handshake again.
var ErrShardDown = errors.New("shard: shard server down")

// pool is one shard's client-connection pool. Connections are checked out
// for exactly one synchronous operation (a Client is single-goroutine), so
// concurrent router calls against the same shard each get their own
// connection; idle ones are reused LIFO.
type pool struct {
	shard   int
	addr    string
	timeout time.Duration // dial bound and per-operation I/O deadline

	// mu guards addr, idle, down and closed. Leaf-like in the router
	// hierarchy: nothing is acquired while it is held (dials happen
	// outside it).
	mu   sync.Mutex
	idle []*wire.Client
	down error // non-nil while the shard is marked down (wraps ErrShardDown)
	// closed marks the pool shut for good (router Close). A checkout after
	// close fails, and a connection returned by an operation that was
	// still in flight when Close ran is closed instead of parked — without
	// the flag such a connection would sit in idle forever, leaked.
	closed bool
}

func newPool(shard int, addr string, timeout time.Duration) *pool {
	return &pool{shard: shard, addr: addr, timeout: timeout}
}

// get checks out a connection: an idle one if available, a fresh dial
// otherwise. While the shard is marked down it fails fast with the stored
// ErrShardDown error; only the health monitor (or a successful seed)
// clears the mark.
func (p *pool) get() (*wire.Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("shard %d: %w: router closed", p.shard, ErrShardDown)
	}
	if p.down != nil {
		err := p.down
		p.mu.Unlock()
		return nil, err
	}
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	addr := p.addr
	p.mu.Unlock()
	c, err := wire.DialTimeout(addr, p.timeout)
	if err != nil {
		p.markDown(err)
		return nil, fmt.Errorf("shard %d (%s): %w: %w", p.shard, addr, ErrShardDown, err)
	}
	return c, nil
}

// put returns a healthy connection to the idle list. If the shard was
// marked down — or the pool closed — in the meantime, the connection must
// not be parked: a down shard makes it stale evidence, and a closed pool
// would never close it again.
func (p *pool) put(c *wire.Client) {
	p.mu.Lock()
	if p.down != nil || p.closed {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// discard drops a connection whose stream state is unknown (transport
// error mid-operation). The shard is not marked down — the next get dials
// fresh, and only a failed dial (or health probe) declares it down.
func (p *pool) discard(c *wire.Client) { c.Close() }

// markDown records the shard as unreachable and drops every idle
// connection (they share the dead peer).
func (p *pool) markDown(cause error) {
	p.mu.Lock()
	if p.down == nil {
		p.down = fmt.Errorf("shard %d (%s): %w: %w", p.shard, p.addr, ErrShardDown, cause)
	}
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

// seed installs a verified connection and clears any down mark (used by
// the opening handshake and the health monitor's successful probes). A
// probe racing router Close may land here after the pool shut — the
// connection is closed, not parked.
func (p *pool) seed(c *wire.Client) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.down = nil
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// isDown reports whether the shard is currently marked down.
func (p *pool) isDown() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down != nil
}

// address returns the pool's current target (it changes on failover).
func (p *pool) address() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

// retarget points the pool at a promoted standby's address. The shard
// stays marked down — with the new address in the mark — until a health
// probe verifies the new primary's handshake; idle connections to the old
// primary are dropped.
func (p *pool) retarget(addr string, cause error) {
	p.mu.Lock()
	p.addr = addr
	p.down = fmt.Errorf("shard %d (%s): %w: awaiting promoted standby: %w", p.shard, addr, ErrShardDown, cause)
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

// closeAll shuts the pool for good: every idle connection is closed, later
// checkouts fail, and in-flight returns are closed on arrival (router
// shutdown).
func (p *pool) closeAll() {
	p.mu.Lock()
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}
