package shard

import (
	"labflow/internal/labbase"
	"labflow/internal/storage"
)

// Scatter-gather reads. The deterministic merge rule (DESIGN §9): ordered
// aggregates concatenate per-shard results in shard order, counts sum.
// Because the shard number sits in an OID's high index bits, every shard-k
// OID in a segment sorts below every shard-k+1 OID, so concatenating
// per-shard OID-sorted lists in shard order *is* the globally OID-sorted
// list — no merge pass, and byte-identical to what a 1-shard run returns
// for the same logical data. Scans visit shards in shard order, each in
// its native (insertion) order.

// MaterialsInState concatenates the shards' OID-sorted lists in shard
// order, which is globally OID-sorted (see the merge rule above).
func (db *DB) MaterialsInState(state string) ([]storage.OID, error) {
	if len(db.shards) == 1 {
		return db.shards[0].MaterialsInState(state)
	}
	var all []storage.OID
	for k, sh := range db.shards {
		part, err := sh.MaterialsInState(state)
		if err != nil {
			return nil, db.shardErr(k, err)
		}
		all = append(all, part...)
	}
	return all, nil
}

// CountInState sums the per-shard counts.
func (db *DB) CountInState(state string) (uint64, error) {
	var total uint64
	for k, sh := range db.shards {
		c, err := sh.CountInState(state)
		if err != nil {
			return 0, db.shardErr(k, err)
		}
		total += c
	}
	return total, nil
}

// CountMaterials sums the per-shard counts (subclass-inclusive, as on a
// single DB).
func (db *DB) CountMaterials(class string) (uint64, error) {
	var total uint64
	for k, sh := range db.shards {
		c, err := sh.CountMaterials(class)
		if err != nil {
			return 0, db.shardErr(k, err)
		}
		total += c
	}
	return total, nil
}

// CountSteps sums the per-shard counts.
func (db *DB) CountSteps(class string) (uint64, error) {
	var total uint64
	for k, sh := range db.shards {
		c, err := sh.CountSteps(class)
		if err != nil {
			return 0, db.shardErr(k, err)
		}
		total += c
	}
	return total, nil
}

// ScanMaterials visits shards in shard order, each in its native scan
// order.
func (db *DB) ScanMaterials(class string, fn func(*labbase.Material) error) error {
	for k, sh := range db.shards {
		if err := sh.ScanMaterials(class, fn); err != nil {
			return db.shardErr(k, err)
		}
	}
	return nil
}

// ScanAllMaterials visits shards in shard order, each in its native scan
// order.
func (db *DB) ScanAllMaterials(fn func(*labbase.Material) error) error {
	for k, sh := range db.shards {
		if err := sh.ScanAllMaterials(fn); err != nil {
			return db.shardErr(k, err)
		}
	}
	return nil
}

// ScanSteps visits shards in shard order, each in its native scan order.
func (db *DB) ScanSteps(class string, fn func(*labbase.Step) error) error {
	for k, sh := range db.shards {
		if err := sh.ScanSteps(class, fn); err != nil {
			return db.shardErr(k, err)
		}
	}
	return nil
}

// Dump sums the per-shard audit counters. Per-shard deduplication equals
// global deduplication: a batched step's history entries live on its one
// home shard.
func (db *DB) Dump() (labbase.DumpStats, error) {
	var total labbase.DumpStats
	for k, sh := range db.shards {
		ds, err := sh.Dump()
		if err != nil {
			return total, db.shardErr(k, err)
		}
		total.Materials += ds.Materials
		total.Steps += ds.Steps
		total.AttrValues += ds.AttrValues
		total.HistoryRead += ds.HistoryRead
	}
	return total, nil
}
