package shard

import (
	"labflow/internal/labbase"
	"labflow/internal/storage"
)

// Scatter-gather reads. The deterministic merge rule (DESIGN §9): ordered
// aggregates concatenate per-shard results in shard order, counts sum.
// Because the shard number sits in an OID's high index bits, every shard-k
// OID in a segment sorts below every shard-k+1 OID, so concatenating
// per-shard OID-sorted lists in shard order *is* the globally OID-sorted
// list — no merge pass, and byte-identical to what a 1-shard run returns
// for the same logical data.
//
// Every cross-shard read first captures one snapshot per shard — up front,
// before any data is read (see shardSnap) — so the answer reflects a set of
// per-shard op boundaries fixed at call time rather than states that drift
// while the shards are visited one by one. The merge itself then runs on
// the captures. Single-shard routed reads delegate straight to the owning
// shard, whose own read entry points capture a snapshot internally.

// MaterialsInState concatenates the shards' OID-sorted lists in shard
// order, which is globally OID-sorted (see the merge rule above).
func (db *DB) MaterialsInState(state string) ([]storage.OID, error) {
	if len(db.shards) == 1 {
		return db.shards[0].MaterialsInState(state)
	}
	s, err := db.Snapshot()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.MaterialsInState(state)
}

// CountInState sums the per-shard counts.
func (db *DB) CountInState(state string) (uint64, error) {
	if len(db.shards) == 1 {
		return db.shards[0].CountInState(state)
	}
	s, err := db.Snapshot()
	if err != nil {
		return 0, err
	}
	defer s.Close()
	return s.CountInState(state)
}

// CountMaterials sums the per-shard counts (subclass-inclusive, as on a
// single DB).
func (db *DB) CountMaterials(class string) (uint64, error) {
	if len(db.shards) == 1 {
		return db.shards[0].CountMaterials(class)
	}
	s, err := db.Snapshot()
	if err != nil {
		return 0, err
	}
	defer s.Close()
	return s.CountMaterials(class)
}

// CountSteps sums the per-shard counts.
func (db *DB) CountSteps(class string) (uint64, error) {
	if len(db.shards) == 1 {
		return db.shards[0].CountSteps(class)
	}
	s, err := db.Snapshot()
	if err != nil {
		return 0, err
	}
	defer s.Close()
	return s.CountSteps(class)
}

// ScanMaterials visits shards in shard order, each in its native scan
// order.
func (db *DB) ScanMaterials(class string, fn func(*labbase.Material) error) error {
	if len(db.shards) == 1 {
		return db.shards[0].ScanMaterials(class, fn)
	}
	s, err := db.Snapshot()
	if err != nil {
		return err
	}
	defer s.Close()
	return s.ScanMaterials(class, fn)
}

// ScanAllMaterials visits shards in shard order, each in its native scan
// order.
func (db *DB) ScanAllMaterials(fn func(*labbase.Material) error) error {
	if len(db.shards) == 1 {
		return db.shards[0].ScanAllMaterials(fn)
	}
	s, err := db.Snapshot()
	if err != nil {
		return err
	}
	defer s.Close()
	return s.ScanAllMaterials(fn)
}

// ScanSteps visits shards in shard order, each in its native scan order.
func (db *DB) ScanSteps(class string, fn func(*labbase.Step) error) error {
	if len(db.shards) == 1 {
		return db.shards[0].ScanSteps(class, fn)
	}
	s, err := db.Snapshot()
	if err != nil {
		return err
	}
	defer s.Close()
	return s.ScanSteps(class, fn)
}

// Dump sums the per-shard audit counters. Per-shard deduplication equals
// global deduplication: a batched step's history entries live on its one
// home shard.
func (db *DB) Dump() (labbase.DumpStats, error) {
	if len(db.shards) == 1 {
		return db.shards[0].Dump()
	}
	s, err := db.Snapshot()
	if err != nil {
		return labbase.DumpStats{}, err
	}
	defer s.Close()
	return s.Dump()
}
