package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"labflow/internal/labbase"
	"labflow/internal/storage"
)

// ErrCrossShard is returned when a step or material set references
// materials living on different shards. Sharded LabBase transactions are
// single-partition (as in d-Chiron): everything one step touches — its
// materials and the members of its Set — must hash to the same shard.
//
// The sentinel itself lives in labbase (see labbase.ErrCrossShard for why);
// this is the same error value, so errors.Is matches either name.
var ErrCrossShard = labbase.ErrCrossShard

// DB fronts N independent labbase.DB instances behind the labbase.Store
// surface. Materials are routed to shard ShardFor(name, N); each shard has
// its own storage manager and its own lock domain, so writes to different
// shards proceed fully in parallel.
//
// Concurrency contract: it matches labbase.DB's — reads run in parallel,
// explicit Begin/Commit write brackets are single-writer and broadcast to
// every shard — with one extension: PutSteps called outside a transaction
// owns its per-shard transactions and may be invoked from many goroutines
// at once (it serializes per shard on internal locks). Callers must not
// run explicit write brackets concurrently with out-of-transaction
// PutSteps calls; the wire server guarantees this by holding its writer
// lock exclusively for every other mutation.
//
// Atomicity contract: a PutSteps batch is atomic per shard and non-atomic
// across shards — each touched shard applies its entries in one
// transaction; on failure the error names the first failing original batch
// index per shard, and entries on other shards commit regardless.
type DB struct {
	shards []*labbase.DB
	// wmu serializes write transactions per shard: PutSteps fan-out
	// goroutines and schema broadcasts take wmu[k] around each shard-k
	// Begin/Commit bracket. Never held across shards simultaneously except
	// in shard order by the broadcast paths (which hold stmu).
	wmu []sync.Mutex
	// stmu is the catalog lock: schema broadcasts, the implicit
	// step-schema ensure, and the global transaction flag. Ordered before
	// any wmu[k].
	stmu  sync.Mutex
	inTxn bool
	opts  labbase.Options
	// known caches (class, attr-multiset) shapes already broadcast, so the
	// hot PutSteps path skips the shard-0 catalog probe. Guarded by stmu;
	// never invalidated (schema is append-only).
	known map[string]struct{}
}

var _ labbase.Store = (*DB)(nil)

// ShardFor routes a material name to a shard with FNV-1a (32-bit). The
// routing is part of the on-disk contract: the same name must hash to the
// same shard across restarts.
func ShardFor(name string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(shards))
}

// Open builds a sharded DB over one storage manager per shard, all opened
// with the same labbase options. Open takes ownership of the managers: on
// error every manager is closed. A 1-shard DB is byte-identical to a plain
// labbase.DB over the same manager (shard 0's OID encoding is the
// identity, and the implicit-schema broadcast is skipped).
func Open(managers []storage.Manager, opts labbase.Options) (*DB, error) {
	n := len(managers)
	if n < 1 || n > MaxShards {
		for _, sm := range managers {
			sm.Close()
		}
		return nil, fmt.Errorf("shard: shard count %d outside [1, %d]", n, MaxShards)
	}
	db := &DB{
		shards: make([]*labbase.DB, n),
		wmu:    make([]sync.Mutex, n),
		opts:   opts,
		known:  make(map[string]struct{}),
	}
	for k, sm := range managers {
		inner, err := labbase.Open(&mapper{inner: sm, shard: k}, opts)
		if err != nil {
			for j := 0; j < k; j++ {
				db.shards[j].Close()
			}
			for _, rest := range managers[k:] {
				rest.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", k, err)
		}
		db.shards[k] = inner
	}
	return db, nil
}

// Shards returns the shard count.
func (db *DB) Shards() int { return len(db.shards) }

// Shard exposes shard k's inner DB for tests and recovery tooling.
func (db *DB) Shard(k int) *labbase.DB { return db.shards[k] }

// ConcurrentBatches reports that PutSteps does its own per-shard write
// serialization, so callers (the wire server) may run batches from
// different connections concurrently instead of serializing them.
func (db *DB) ConcurrentBatches() bool { return true }

// shardFor returns the shard owning a material name.
func (db *DB) shardFor(name string) int { return ShardFor(name, len(db.shards)) }

// shardErr adds shard context to an inner error. On a 1-shard DB the
// error passes through verbatim, keeping error bytes identical to a plain
// labbase.DB.
func (db *DB) shardErr(k int, err error) error {
	if len(db.shards) == 1 {
		return err
	}
	return fmt.Errorf("shard %d: %w", k, err)
}

// shardOf validates and decodes the shard number in an OID.
func (db *DB) shardOf(oid storage.OID) (int, error) {
	return shardOfN(oid, len(db.shards))
}

// shardOfN is shardOf parameterized by shard count, shared with the
// distributed Router so routing errors stay byte-identical between the
// in-process facade and the wire topology.
func shardOfN(oid storage.OID, n int) (int, error) {
	k := ShardOfOID(oid)
	if k >= n {
		return 0, fmt.Errorf("shard: %v names shard %d of %d: %w",
			oid, k, n, storage.ErrNoSuchObject)
	}
	return k, nil
}

// Begin opens a write bracket on every shard, in shard order. See the DB
// contract: explicit brackets are single-writer.
func (db *DB) Begin() error {
	db.stmu.Lock()
	defer db.stmu.Unlock()
	for k, sh := range db.shards {
		if err := sh.Begin(); err != nil {
			return db.shardErr(k, err)
		}
	}
	db.inTxn = true
	return nil
}

// Commit commits every shard's bracket, in shard order. Shard commits are
// independent durability points: a crash between them leaves some shards
// committed and others not (the cross-shard contract again — each shard's
// own transaction is atomic).
func (db *DB) Commit() error {
	db.stmu.Lock()
	defer db.stmu.Unlock()
	var errs []error
	for k, sh := range db.shards {
		if err := sh.Commit(); err != nil {
			errs = append(errs, db.shardErr(k, err))
		}
	}
	db.inTxn = false
	return errors.Join(errs...)
}

// InTxn reports whether a broadcast write bracket is open.
func (db *DB) InTxn() bool {
	db.stmu.Lock()
	defer db.stmu.Unlock()
	return db.inTxn
}

// Close closes every shard.
func (db *DB) Close() error {
	var errs []error
	for k, sh := range db.shards {
		if err := sh.Close(); err != nil {
			errs = append(errs, db.shardErr(k, err))
		}
	}
	return errors.Join(errs...)
}

// StoreStats sums the storage counters across shards. The name is the
// backend's own for one shard (keeping 1-shard reports identical) and
// suffixed with the shard count otherwise.
func (db *DB) StoreStats() (string, storage.Stats) {
	name, total := db.shards[0].StoreStats()
	for _, sh := range db.shards[1:] {
		_, st := sh.StoreStats()
		total.Faults += st.Faults
		total.PageWrites += st.PageWrites
		total.Reads += st.Reads
		total.Writes += st.Writes
		total.Allocs += st.Allocs
		total.LockWaits += st.LockWaits
		total.SizeBytes += st.SizeBytes
		total.LiveObjects += st.LiveObjects
		total.LiveBytes += st.LiveBytes
	}
	if len(db.shards) > 1 {
		name = fmt.Sprintf("%s×%d", name, len(db.shards))
	}
	return name, total
}

// broadcast runs a schema definition on every shard in shard order and
// asserts the returned IDs agree. Callers hold stmu; the caller also
// guarantees an open transaction on every shard (the global bracket).
// Identical IDs are an invariant, not a hope: every shard starts from the
// same (empty) catalog and sees the same definitions in the same order
// under stmu, and ID allocation in labbase is deterministic in that order.
func broadcast[T comparable](db *DB, what, name string, def func(*labbase.DB) (T, error)) (T, error) {
	var first T
	for k, sh := range db.shards {
		got, err := def(sh)
		if err != nil {
			return first, db.shardErr(k, err)
		}
		if k == 0 {
			first = got
		} else if got != first {
			return first, fmt.Errorf("shard: catalog divergence: %s %q is %v on shard %d, %v on shard 0",
				what, name, got, k, first)
		}
	}
	return first, nil
}

// DefineMaterialClass broadcasts the definition to every shard.
func (db *DB) DefineMaterialClass(name, parent string) (labbase.ClassID, error) {
	db.stmu.Lock()
	defer db.stmu.Unlock()
	return broadcast(db, "material class", name, func(sh *labbase.DB) (labbase.ClassID, error) {
		return sh.DefineMaterialClass(name, parent)
	})
}

// DefineAttr broadcasts the definition to every shard.
func (db *DB) DefineAttr(name string, kind labbase.Kind) (labbase.AttrID, error) {
	db.stmu.Lock()
	defer db.stmu.Unlock()
	return broadcast(db, "attribute", name, func(sh *labbase.DB) (labbase.AttrID, error) {
		return sh.DefineAttr(name, kind)
	})
}

// DefineStepClass broadcasts the definition to every shard.
func (db *DB) DefineStepClass(name string, attrs []labbase.AttrDef) (labbase.StepClassID, labbase.Version, error) {
	db.stmu.Lock()
	defer db.stmu.Unlock()
	got, err := broadcast(db, "step class", name, func(sh *labbase.DB) (idVer, error) {
		id, ver, err := sh.DefineStepClass(name, attrs)
		return idVer{id, ver}, err
	})
	return got.id, got.ver, err
}

// DefineState broadcasts the definition to every shard.
func (db *DB) DefineState(name string) (labbase.StateID, error) {
	db.stmu.Lock()
	defer db.stmu.Unlock()
	return broadcast(db, "state", name, func(sh *labbase.DB) (labbase.StateID, error) {
		return sh.DefineState(name)
	})
}

// Catalog listings come from shard 0: the broadcast discipline keeps every
// shard's catalog identical (asserted by the ID checks above and by tests).
func (db *DB) MaterialClasses() []string { return db.shards[0].MaterialClasses() }

// StepClasses lists step classes from shard 0 (see MaterialClasses).
func (db *DB) StepClasses() []string { return db.shards[0].StepClasses() }

// StepClassVersions lists a class's versions from shard 0 (see MaterialClasses).
func (db *DB) StepClassVersions(name string) ([][]string, error) {
	return db.shards[0].StepClassVersions(name)
}

// States lists states from shard 0 (see MaterialClasses).
func (db *DB) States() []string { return db.shards[0].States() }

// CreateMaterial routes the material to its home shard by name hash.
func (db *DB) CreateMaterial(class, name, state string, validTime int64) (storage.OID, error) {
	return db.shards[db.shardFor(name)].CreateMaterial(class, name, state, validTime)
}

// LookupMaterial consults only the name's home shard.
func (db *DB) LookupMaterial(name string) (storage.OID, bool) {
	return db.shards[db.shardFor(name)].LookupMaterial(name)
}

// CreateMaterialSet creates the set on its members' shard. All members
// must co-reside (ErrCrossShard otherwise); an empty set goes to shard 0.
func (db *DB) CreateMaterialSet(members []storage.OID) (storage.OID, error) {
	home, err := setHomeIn(len(db.shards), members)
	if err != nil {
		return storage.NilOID, err
	}
	return db.shards[home].CreateMaterialSet(members)
}

// setHomeIn finds a material set's home shard and enforces member
// co-residency, shared with the Router (identical error bytes).
func setHomeIn(n int, members []storage.OID) (int, error) {
	home := 0
	for i, m := range members {
		k, err := shardOfN(m, n)
		if err != nil {
			return 0, err
		}
		if i == 0 {
			home = k
		} else if k != home {
			return 0, fmt.Errorf("%w: set members %v (shard %d) and %v (shard %d)",
				ErrCrossShard, members[0], home, m, k)
		}
	}
	return home, nil
}

// SetMembers routes by the set's OID.
func (db *DB) SetMembers(oid storage.OID) ([]storage.OID, error) {
	k, err := db.shardOf(oid)
	if err != nil {
		return nil, err
	}
	return db.shards[k].SetMembers(oid)
}

// SetState routes by the material's OID.
func (db *DB) SetState(oid storage.OID, state string) error {
	k, err := db.shardOf(oid)
	if err != nil {
		return err
	}
	return db.shards[k].SetState(oid, state)
}

// routeStep finds a step's home shard: the shard of its first material, or
// of its Set when it names no materials directly, and verifies every
// material co-resides there (the Set's members were already pinned to the
// Set's shard by CreateMaterialSet). A spec with neither materials nor set
// routes to shard 0 so labbase produces its own diagnostic.
func (db *DB) routeStep(spec labbase.StepSpec) (int, error) {
	return routeStepIn(len(db.shards), spec)
}

// routeStepIn is routeStep parameterized by shard count, shared with the
// distributed Router so routing decisions — and their error bytes — stay
// identical between the in-process facade and the wire topology.
func routeStepIn(n int, spec labbase.StepSpec) (int, error) {
	home, haveHome := 0, false
	if !spec.Set.IsNil() {
		k, err := shardOfN(spec.Set, n)
		if err != nil {
			return 0, err
		}
		home, haveHome = k, true
	}
	for _, m := range spec.Materials {
		k, err := shardOfN(m, n)
		if err != nil {
			return 0, err
		}
		if !haveHome {
			home, haveHome = k, true
		} else if k != home {
			return 0, fmt.Errorf("%w: step %q touches shard %d and shard %d",
				ErrCrossShard, spec.Class, home, k)
		}
	}
	return home, nil
}

// RecordStep routes the step to its home shard. Requires the broadcast
// write bracket (labbase.ErrNoTransaction otherwise, from the shard).
func (db *DB) RecordStep(spec labbase.StepSpec) (storage.OID, error) {
	home, err := db.routeStep(spec)
	if err != nil {
		return storage.NilOID, err
	}
	if err := db.ensureStepSchema([]labbase.StepSpec{spec}); err != nil {
		return storage.NilOID, err
	}
	return db.shards[home].RecordStep(spec)
}

// GetMaterial routes by OID.
func (db *DB) GetMaterial(oid storage.OID) (*labbase.Material, error) {
	k, err := db.shardOf(oid)
	if err != nil {
		return nil, err
	}
	return db.shards[k].GetMaterial(oid)
}

// State routes by OID.
func (db *DB) State(oid storage.OID) (string, error) {
	k, err := db.shardOf(oid)
	if err != nil {
		return "", err
	}
	return db.shards[k].State(oid)
}

// GetStep routes by OID.
func (db *DB) GetStep(oid storage.OID) (*labbase.Step, error) {
	k, err := db.shardOf(oid)
	if err != nil {
		return nil, err
	}
	return db.shards[k].GetStep(oid)
}

// History routes by OID.
func (db *DB) History(oid storage.OID) ([]labbase.HistoryEntry, error) {
	k, err := db.shardOf(oid)
	if err != nil {
		return nil, err
	}
	return db.shards[k].History(oid)
}

// StepsInvolving routes by OID.
func (db *DB) StepsInvolving(oid storage.OID) ([]storage.OID, error) {
	k, err := db.shardOf(oid)
	if err != nil {
		return nil, err
	}
	return db.shards[k].StepsInvolving(oid)
}

// MostRecent routes by OID.
func (db *DB) MostRecent(oid storage.OID, attr string) (labbase.Value, storage.OID, bool, error) {
	k, err := db.shardOf(oid)
	if err != nil {
		return labbase.Value{}, storage.NilOID, false, err
	}
	return db.shards[k].MostRecent(oid, attr)
}

// MostRecentScan routes by OID.
func (db *DB) MostRecentScan(oid storage.OID, attr string) (labbase.Value, storage.OID, bool, error) {
	k, err := db.shardOf(oid)
	if err != nil {
		return labbase.Value{}, storage.NilOID, false, err
	}
	return db.shards[k].MostRecentScan(oid, attr)
}

// MostRecentAsOf routes by OID.
func (db *DB) MostRecentAsOf(oid storage.OID, attr string, t int64) (labbase.Value, storage.OID, bool, error) {
	k, err := db.shardOf(oid)
	if err != nil {
		return labbase.Value{}, storage.NilOID, false, err
	}
	return db.shards[k].MostRecentAsOf(oid, attr, t)
}

// AttrTimeline routes by OID.
func (db *DB) AttrTimeline(oid storage.OID, attr string) ([]labbase.TimelineEntry, error) {
	k, err := db.shardOf(oid)
	if err != nil {
		return nil, err
	}
	return db.shards[k].AttrTimeline(oid, attr)
}
