package shard

import (
	"errors"

	"labflow/internal/labbase"
	"labflow/internal/storage"
)

// shardSnap is a cross-shard snapshot: one labbase snapshot per shard, all
// captured up front (in shard order) before any data is read. Routed reads
// answer from the owning shard's capture; scatter-gather reads apply the
// deterministic merge rule of DESIGN §9 over the captures. Because every
// shard-local snapshot sits at one of that shard's op boundaries, a
// cross-shard read through a shardSnap never observes a torn mid-operation
// state on any shard, and repeated reads through the same handle are
// mutually consistent — the capture does not drift between the first and
// last shard visited the way a shard-by-shard walk over live state can.
type shardSnap struct {
	db    *DB
	snaps []labbase.Snapshot
}

var _ labbase.Snapshot = (*shardSnap)(nil)

// Snapshot captures one snapshot per shard, in shard order, before reading
// anything. The handle must be Closed.
func (db *DB) Snapshot() (labbase.Snapshot, error) {
	snaps := make([]labbase.Snapshot, len(db.shards))
	for k, sh := range db.shards {
		s, err := sh.Snapshot()
		if err != nil {
			for _, prev := range snaps[:k] {
				prev.Close()
			}
			return nil, db.shardErr(k, err)
		}
		snaps[k] = s
	}
	return &shardSnap{db: db, snaps: snaps}, nil
}

// Close releases every shard's capture.
func (s *shardSnap) Close() error {
	var errs []error
	for k, snap := range s.snaps {
		if err := snap.Close(); err != nil {
			errs = append(errs, s.db.shardErr(k, err))
		}
	}
	return errors.Join(errs...)
}

// routed returns the capture owning an OID.
func (s *shardSnap) routed(oid storage.OID) (labbase.Snapshot, error) {
	k, err := s.db.shardOf(oid)
	if err != nil {
		return nil, err
	}
	return s.snaps[k], nil
}

// --- catalog listings (shard 0; the broadcast discipline keeps catalogs
// identical across shards) --------------------------------------------------

func (s *shardSnap) MaterialClasses() []string { return s.snaps[0].MaterialClasses() }
func (s *shardSnap) StepClasses() []string     { return s.snaps[0].StepClasses() }
func (s *shardSnap) States() []string          { return s.snaps[0].States() }

func (s *shardSnap) StepClassVersions(name string) ([][]string, error) {
	return s.snaps[0].StepClassVersions(name)
}

// --- routed reads -----------------------------------------------------------

func (s *shardSnap) LookupMaterial(name string) (storage.OID, bool) {
	return s.snaps[s.db.shardFor(name)].LookupMaterial(name)
}

func (s *shardSnap) GetMaterial(oid storage.OID) (*labbase.Material, error) {
	sh, err := s.routed(oid)
	if err != nil {
		return nil, err
	}
	return sh.GetMaterial(oid)
}

func (s *shardSnap) State(oid storage.OID) (string, error) {
	sh, err := s.routed(oid)
	if err != nil {
		return "", err
	}
	return sh.State(oid)
}

func (s *shardSnap) SetMembers(oid storage.OID) ([]storage.OID, error) {
	sh, err := s.routed(oid)
	if err != nil {
		return nil, err
	}
	return sh.SetMembers(oid)
}

func (s *shardSnap) GetStep(oid storage.OID) (*labbase.Step, error) {
	sh, err := s.routed(oid)
	if err != nil {
		return nil, err
	}
	return sh.GetStep(oid)
}

func (s *shardSnap) History(oid storage.OID) ([]labbase.HistoryEntry, error) {
	sh, err := s.routed(oid)
	if err != nil {
		return nil, err
	}
	return sh.History(oid)
}

func (s *shardSnap) StepsInvolving(oid storage.OID) ([]storage.OID, error) {
	sh, err := s.routed(oid)
	if err != nil {
		return nil, err
	}
	return sh.StepsInvolving(oid)
}

func (s *shardSnap) MostRecent(oid storage.OID, attr string) (labbase.Value, storage.OID, bool, error) {
	sh, err := s.routed(oid)
	if err != nil {
		return labbase.Value{}, storage.NilOID, false, err
	}
	return sh.MostRecent(oid, attr)
}

func (s *shardSnap) MostRecentScan(oid storage.OID, attr string) (labbase.Value, storage.OID, bool, error) {
	sh, err := s.routed(oid)
	if err != nil {
		return labbase.Value{}, storage.NilOID, false, err
	}
	return sh.MostRecentScan(oid, attr)
}

func (s *shardSnap) MostRecentAsOf(oid storage.OID, attr string, t int64) (labbase.Value, storage.OID, bool, error) {
	sh, err := s.routed(oid)
	if err != nil {
		return labbase.Value{}, storage.NilOID, false, err
	}
	return sh.MostRecentAsOf(oid, attr, t)
}

func (s *shardSnap) AttrTimeline(oid storage.OID, attr string) ([]labbase.TimelineEntry, error) {
	sh, err := s.routed(oid)
	if err != nil {
		return nil, err
	}
	return sh.AttrTimeline(oid, attr)
}

// --- scatter-gather reads (merge rule of DESIGN §9: ordered aggregates
// concatenate in shard order, counts sum) ------------------------------------

func (s *shardSnap) MaterialsInState(state string) ([]storage.OID, error) {
	if len(s.snaps) == 1 {
		return s.snaps[0].MaterialsInState(state)
	}
	var all []storage.OID
	for k, sh := range s.snaps {
		part, err := sh.MaterialsInState(state)
		if err != nil {
			return nil, s.db.shardErr(k, err)
		}
		all = append(all, part...)
	}
	return all, nil
}

func (s *shardSnap) CountInState(state string) (uint64, error) {
	var total uint64
	for k, sh := range s.snaps {
		c, err := sh.CountInState(state)
		if err != nil {
			return 0, s.db.shardErr(k, err)
		}
		total += c
	}
	return total, nil
}

func (s *shardSnap) CountMaterials(class string) (uint64, error) {
	var total uint64
	for k, sh := range s.snaps {
		c, err := sh.CountMaterials(class)
		if err != nil {
			return 0, s.db.shardErr(k, err)
		}
		total += c
	}
	return total, nil
}

func (s *shardSnap) CountSteps(class string) (uint64, error) {
	var total uint64
	for k, sh := range s.snaps {
		c, err := sh.CountSteps(class)
		if err != nil {
			return 0, s.db.shardErr(k, err)
		}
		total += c
	}
	return total, nil
}

func (s *shardSnap) ScanMaterials(class string, fn func(*labbase.Material) error) error {
	for k, sh := range s.snaps {
		if err := sh.ScanMaterials(class, fn); err != nil {
			return s.db.shardErr(k, err)
		}
	}
	return nil
}

func (s *shardSnap) ScanAllMaterials(fn func(*labbase.Material) error) error {
	for k, sh := range s.snaps {
		if err := sh.ScanAllMaterials(fn); err != nil {
			return s.db.shardErr(k, err)
		}
	}
	return nil
}

func (s *shardSnap) ScanSteps(class string, fn func(*labbase.Step) error) error {
	for k, sh := range s.snaps {
		if err := sh.ScanSteps(class, fn); err != nil {
			return s.db.shardErr(k, err)
		}
	}
	return nil
}

func (s *shardSnap) Dump() (labbase.DumpStats, error) {
	var total labbase.DumpStats
	for k, sh := range s.snaps {
		ds, err := sh.Dump()
		if err != nil {
			return total, s.db.shardErr(k, err)
		}
		total.Materials += ds.Materials
		total.Steps += ds.Steps
		total.AttrValues += ds.AttrValues
		total.HistoryRead += ds.HistoryRead
	}
	return total, nil
}
