package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"labflow/internal/fault"
	"labflow/internal/labbase"
	"labflow/internal/storage"
	"labflow/internal/storage/ostore"
	"labflow/internal/storage/pagefile"
	"labflow/internal/storage/texas"
)

// The shard crash schedule: three on-disk shards, only shard 1's media
// fault-injected, the crash point drawn (from the seed) over shard 1's
// I/O during the batch phase. Shard 1's media op stream is deterministic
// even though PutSteps fans out: the test issues one batch at a time, and
// within a batch only shard 1's goroutine touches shard 1's store.
//
// The invariants, per the cross-shard atomicity contract:
//   - The batch in flight at the crash commits on the surviving shards.
//   - Batches issued after the crash, routed to survivors only, succeed.
//   - Survivors close cleanly and reopen with exactly the committed model.
//   - The torn shard recovers per its backend's own contract: ostore
//     reopens with the committed step count or committed+pending (the
//     crash-in-Commit ambiguity), never anything between; texas either
//     refuses loudly (ErrTornStore / superblock) or reopens with exactly
//     the committed count.

const crashShards = 3

// crashBackend abstracts the two persistent backends for the schedule.
type crashBackend struct {
	name string
	// openPlain opens (or reopens) the shard's store without injection.
	openPlain func(path string) (storage.Manager, error)
	// openInjected opens a fresh store with its media behind the injector.
	openInjected func(path string, in *fault.Injector) (storage.Manager, error)
	// tornOK reports whether a reopen refusal is the designed loud failure.
	tornOK func(err error) bool
}

func crashBackends() []crashBackend {
	return []crashBackend{
		{
			name: "ostore",
			openPlain: func(path string) (storage.Manager, error) {
				return ostore.Open(ostore.Options{Path: path, PoolPages: 48})
			},
			openInjected: func(path string, in *fault.Injector) (storage.Manager, error) {
				fb, err := pagefile.OpenFile(path)
				if err != nil {
					return nil, err
				}
				logf, err := os.OpenFile(path+".log", os.O_RDWR|os.O_CREATE, 0o644)
				if err != nil {
					fb.Close()
					return nil, err
				}
				return ostore.Open(ostore.Options{
					Backing:   fault.WrapBacking(fb, in),
					Log:       fault.WrapFile(logf, in),
					PoolPages: 48,
				})
			},
			tornOK: func(err error) bool { return false }, // ostore must always reopen
		},
		{
			name: "texas",
			openPlain: func(path string) (storage.Manager, error) {
				return texas.Open(texas.Options{Path: path, MaxResidentPages: 48})
			},
			openInjected: func(path string, in *fault.Injector) (storage.Manager, error) {
				fb, err := pagefile.OpenFile(path)
				if err != nil {
					return nil, err
				}
				return texas.Open(texas.Options{
					Backing:          fault.WrapBacking(fb, in),
					MaxResidentPages: 48,
				})
			},
			tornOK: func(err error) bool { return err != nil }, // any refusal is safe
		},
	}
}

// shardCrashSeeds returns how many seeded schedules each backend runs.
func shardCrashSeeds(t *testing.T) int64 {
	if testing.Short() {
		return 15
	}
	return 60
}

// crashNames buckets deterministic material names by home shard: per[k][i]
// is the i-th name homed on shard k under the FNV-1a routing.
func crashNames(perShard int) [][]string {
	per := make([][]string, crashShards)
	for i := 0; ; i++ {
		name := fmt.Sprintf("cm-%d", i)
		k := ShardFor(name, crashShards)
		if len(per[k]) < perShard {
			per[k] = append(per[k], name)
		}
		full := 0
		for _, names := range per {
			full += len(names)
		}
		if full == crashShards*perShard {
			return per
		}
	}
}

// shardCrashRun is one seeded experiment: a count pass (never-failing
// injector) learns shard 1's setup and total op counts and verifies the
// clean path, then the crash pass replays the identical workload with the
// crash drawn over the batch-phase window.
func shardCrashRun(t *testing.T, be crashBackend, seed int64, dir string) {
	t.Helper()
	names := crashNames(4)

	// Pass 1: count shard 1's I/O, fault-free, and verify the clean path.
	in := fault.NewInjector(fault.Plan{Seed: seed}) // CrashOp 0: count only
	paths := crashPaths(dir, be.name, seed, "count")
	setupOps, sh := runShardWorkload(t, be, paths, in, seed, names, 0)
	if sh.batchErr != nil {
		t.Fatalf("%s seed %d: fault-free batch failed: %v", be.name, seed, sh.batchErr)
	}
	totalOps := in.Ops()
	if totalOps <= setupOps {
		t.Fatalf("%s seed %d: batch phase produced no shard-1 I/O (%d..%d)", be.name, seed, setupOps, totalOps)
	}
	verifyShard(t, be, seed, paths, 0, sh, false, 0)
	verifyShard(t, be, seed, paths, 2, sh, false, 0)
	verifyShard(t, be, seed, paths, 1, sh, false, 0)

	// Pass 2: same workload, crash drawn from the seed over the batch phase.
	plan := fault.NewPlan(seed, totalOps-setupOps)
	plan.CrashOp += setupOps
	cin := fault.NewInjector(plan)
	cpaths := crashPaths(dir, be.name, seed, "crash")
	_, csh := runShardWorkload(t, be, cpaths, cin, seed, names, plan.CrashOp)
	if !cin.Crashed() {
		t.Fatalf("%s seed %d: plan crash@%d never fired (%d ops seen)", be.name, seed, plan.CrashOp, cin.Ops())
	}
	if csh.batchErr != nil && !errors.Is(csh.batchErr, fault.ErrCrashed) {
		t.Fatalf("%s seed %d: batch failed without injected crash: %v", be.name, seed, csh.batchErr)
	}

	// Survivors reopen clean with exactly the committed model; the torn
	// shard recovers per its backend contract.
	verifyShard(t, be, seed, cpaths, 0, csh, false, 0)
	verifyShard(t, be, seed, cpaths, 2, csh, false, 0)
	verifyShard(t, be, seed, cpaths, 1, csh, true, csh.pending1)
}

func crashPaths(dir, backend string, seed int64, pass string) [crashShards]string {
	var paths [crashShards]string
	for k := range paths {
		paths[k] = filepath.Join(dir, fmt.Sprintf("%s-%s-%d-shard%d.db", backend, pass, seed, k))
	}
	return paths
}

// crashShadow is the workload's committed model, per shard.
type crashShadow struct {
	mats     [crashShards]uint64 // materials created (all during setup)
	steps    [crashShards]uint64 // step-batch parts confirmed committed
	pending1 uint64              // shard 1's part of the batch in flight at the crash
	batchErr error               // first batch error observed (nil in a clean run)
}

// runShardWorkload opens the three shards (shard 1 behind the injector),
// runs the seeded schema + materials setup and then the batch phase, and
// returns shard 1's op count at the end of setup plus the shadow model.
// The batch phase switches to survivors-only batches after the first
// injected crash and requires them to succeed.
func runShardWorkload(t *testing.T, be crashBackend, paths [crashShards]string, in *fault.Injector, seed int64, names [][]string, crashOp uint64) (uint64, *crashShadow) {
	t.Helper()
	managers := make([]storage.Manager, crashShards)
	for k := range managers {
		var err error
		if k == 1 {
			managers[k], err = be.openInjected(paths[k], in)
		} else {
			managers[k], err = be.openPlain(paths[k])
		}
		if err != nil {
			t.Fatalf("%s seed %d: open shard %d: %v", be.name, seed, k, err)
		}
	}
	db, err := Open(managers, labbase.DefaultOptions())
	if err != nil {
		t.Fatalf("%s seed %d: shard.Open: %v", be.name, seed, err)
	}
	// Abandon the torn shard on the way out: survivors close cleanly, the
	// fault layer keeps shard 1's media exactly as the crash left them.
	defer db.Close()

	sh := &crashShadow{}

	// Setup: broadcast schema, create materials on every shard. The crash
	// window starts after this phase, so it must complete.
	if err := db.Begin(); err != nil {
		t.Fatalf("%s seed %d: setup begin: %v", be.name, seed, err)
	}
	if _, err := db.DefineMaterialClass("sample", ""); err != nil {
		t.Fatalf("%s seed %d: define class: %v", be.name, seed, err)
	}
	if _, err := db.DefineState("received"); err != nil {
		t.Fatalf("%s seed %d: define state: %v", be.name, seed, err)
	}
	if _, _, err := db.DefineStepClass("measure", []labbase.AttrDef{
		{Name: "reading", Kind: labbase.KindInt},
	}); err != nil {
		t.Fatalf("%s seed %d: define step class: %v", be.name, seed, err)
	}
	oids := make([][]storage.OID, crashShards)
	for k, perShard := range names {
		for i, name := range perShard {
			oid, err := db.CreateMaterial("sample", name, "received", int64(i))
			if err != nil {
				t.Fatalf("%s seed %d: create %q: %v", be.name, seed, name, err)
			}
			oids[k] = append(oids[k], oid)
			sh.mats[k]++
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatalf("%s seed %d: setup commit: %v", be.name, seed, err)
	}
	setupOps := in.Ops()
	if crashOp != 0 && crashOp <= setupOps {
		t.Fatalf("%s seed %d: crash@%d landed inside setup (%d ops)", be.name, seed, crashOp, setupOps)
	}

	// Batch phase: seeded batches spanning all three shards until the
	// crash, then survivors-only batches that must keep succeeding.
	rng := rand.New(rand.NewSource(seed))
	const batches = 12
	crashed := false
	for b := 0; b < batches; b++ {
		var specs []labbase.StepSpec
		var parts [crashShards]uint64
		for k := 0; k < crashShards; k++ {
			if crashed && k == 1 {
				continue
			}
			n := 1 + rng.Intn(3)
			for i := 0; i < n; i++ {
				specs = append(specs, labbase.StepSpec{
					Class:     "measure",
					ValidTime: int64(b)<<16 | int64(len(specs)),
					Materials: []storage.OID{oids[k][rng.Intn(len(oids[k]))]},
					Attrs:     []labbase.AttrValue{{Name: "reading", Value: labbase.Int64(int64(b))}},
				})
				parts[k]++
			}
		}
		_, err := db.PutSteps(specs)
		if err != nil {
			if crashed || !errors.Is(err, fault.ErrCrashed) {
				// Survivors-only batches may not fail; neither may any
				// batch in a fault-free run.
				sh.batchErr = err
				return setupOps, sh
			}
			// First crash: the surviving shards' parts committed (their
			// transactions are independent); shard 1's part is in limbo.
			crashed = true
			sh.batchErr = err
			sh.pending1 = parts[1]
			sh.steps[0] += parts[0]
			sh.steps[2] += parts[2]
			continue
		}
		for k := range parts {
			sh.steps[k] += parts[k]
		}
	}
	return setupOps, sh
}

// verifyShard reopens one shard cold through its mapper and diffs it
// against the shadow model. For the torn shard (torn=true) the backend
// contract applies: ostore must reopen with committed or committed+pending
// steps; texas must refuse loudly or show exactly the committed count.
func verifyShard(t *testing.T, be crashBackend, seed int64, paths [crashShards]string, k int, sh *crashShadow, torn bool, pending uint64) {
	t.Helper()
	m, err := be.openPlain(paths[k])
	if err != nil {
		if torn && be.tornOK(err) {
			return // loud refusal is the designed outcome
		}
		t.Fatalf("%s seed %d: reopen shard %d: %v", be.name, seed, k, err)
	}
	db, err := labbase.Open(&mapper{inner: m, shard: k}, labbase.DefaultOptions())
	if err != nil {
		t.Fatalf("%s seed %d: labbase reopen shard %d: %v", be.name, seed, k, err)
	}
	defer db.Close()

	mats, err := db.CountMaterials("sample")
	if err != nil {
		t.Fatalf("%s seed %d: shard %d CountMaterials: %v", be.name, seed, k, err)
	}
	if mats != sh.mats[k] {
		t.Fatalf("%s seed %d: shard %d has %d materials, want %d", be.name, seed, k, mats, sh.mats[k])
	}
	steps, err := db.CountSteps("measure")
	if err != nil {
		t.Fatalf("%s seed %d: shard %d CountSteps: %v", be.name, seed, k, err)
	}
	if steps == sh.steps[k] {
		return
	}
	if torn && pending != 0 && steps == sh.steps[k]+pending {
		return // crash inside Commit after the durability point
	}
	t.Fatalf("%s seed %d: shard %d has %d steps, want %d (pending %d, torn=%v)",
		be.name, seed, k, steps, sh.steps[k], pending, torn)
}

// TestCrashScheduleShard runs the seeded one-shard-crashes schedules for
// both persistent backends. The name matches the `-run 'TestCrashSchedule'`
// fixed-seed pass in scripts/ci.sh and `make crashtest`.
func TestCrashScheduleShard(t *testing.T) {
	for _, be := range crashBackends() {
		be := be
		t.Run(be.name, func(t *testing.T) {
			dir := t.TempDir()
			for seed := int64(1); seed <= shardCrashSeeds(t); seed++ {
				shardCrashRun(t, be, seed, dir)
			}
		})
	}
}
