package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"labflow/internal/labbase"
	"labflow/internal/storage"
	"labflow/internal/wire"
)

// Router is the distributed counterpart of the in-process sharded DB: it
// satisfies labbase.Store over N labbase-server processes, one per shard,
// reached through the wire protocol. Routing, merging, and error wrapping
// reuse the exact helpers the in-process facade uses (shardOfN, setHomeIn,
// routeStepIn, the shard-order merge rules of DESIGN §9), so a workload
// run through a Router returns byte-identical results — data and error
// strings both — to the same workload on a shard.DB over the same stores.
//
// Concurrency contract: identical to shard.DB. Reads may run from any
// number of goroutines (each checks out its own pooled connection);
// explicit Begin/Commit brackets are single-writer; PutSteps called
// outside a bracket owns its per-shard transactions and may be invoked
// concurrently, but not concurrently with an explicit bracket.
//
// Atomicity contract: also identical — per-shard transactions are atomic,
// cross-shard operations (broadcast brackets, multi-shard PutSteps
// batches) are not atomic across shards.
//
// Failure model: a shard server the router cannot reach marks its pool
// down; operations touching that shard fail fast with ErrShardDown naming
// it, and the health monitor keeps probing the address, re-admitting the
// shard when it answers the OpShardInfo handshake with the right identity.
// When the topology names a warm standby for the shard, a down shard whose
// revival probe fails is failed over instead: the monitor promotes the
// standby (OpPromote) and retargets the shard's pool at it, and the old
// primary's address is never probed again — if the old process comes back
// it is simply unreachable from this router, which is the split-brain
// guard (see DESIGN §12).
type Router struct {
	pools   []*pool
	count   int
	store   string // shard 0's storage-backend name (the map fingerprint)
	opts    RouterOptions
	metrics *routerMetrics
	// standbys holds each shard's warm-standby address ("" = none),
	// consumed on failover. Written by OpenRouter and then touched only by
	// the health goroutine, so it needs no locking.
	standbys []string

	// stmu is the router's catalog-and-transaction lock, mirroring
	// shard.DB.stmu: it guards the broadcast bracket state (inTxn, the
	// pinned per-shard connections) and the implicit-schema cache. Ordered
	// before pool.mu and routerMetrics.mu.
	stmu  sync.Mutex
	inTxn bool
	// txConns pins one connection per shard while a broadcast bracket is
	// open: the server ties a transaction to the connection that sent
	// OpBegin, so every mutation inside the bracket must travel on it.
	txConns []*wire.Client
	// known caches (class, attr-multiset) shapes already broadcast,
	// exactly as shard.DB.known does.
	known map[string]struct{}

	stopHealth chan struct{}
	healthWG   sync.WaitGroup
	closeOnce  sync.Once
}

var _ labbase.Store = (*Router)(nil)

// RouterOptions tunes the router's wire behavior.
type RouterOptions struct {
	// DialTimeout bounds connection establishment per shard and becomes
	// each connection's per-operation I/O deadline (default 5s), so a dead
	// peer turns into a deadline error instead of a hang mid-scatter.
	DialTimeout time.Duration
	// HealthInterval is the health monitor's probe period (default 1s;
	// negative disables the monitor entirely).
	HealthInterval time.Duration
	// StrictSchema skips the implicit step-schema broadcast, for clusters
	// whose servers run with implicit schema evolution disabled (the
	// in-process facade reads this off labbase.Options, which the router
	// cannot see across the wire).
	StrictSchema bool
}

// OpenRouter dials and verifies every shard in the topology, refusing to
// start over a mismatched map: each server must advertise exactly the
// shard index the topology assigns it, the topology's shard count, and
// the same storage backend as shard 0. A router over one server whose
// store is a plain labbase.DB behaves byte-identically to that DB.
func OpenRouter(t Topology, opts RouterOptions) (*Router, error) {
	n := len(t.Shards)
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("shard: topology names %d shards, outside [1, %d]", n, MaxShards)
	}
	if opts.DialTimeout == 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = time.Second
	}
	if len(t.Standbys) != 0 && len(t.Standbys) != n {
		return nil, fmt.Errorf("shard: topology names %d standbys for %d shards", len(t.Standbys), n)
	}
	r := &Router{
		pools:      make([]*pool, n),
		count:      n,
		opts:       opts,
		metrics:    newRouterMetrics(n),
		standbys:   make([]string, n),
		txConns:    make([]*wire.Client, n),
		known:      make(map[string]struct{}),
		stopHealth: make(chan struct{}),
	}
	copy(r.standbys, t.Standbys)
	for k, addr := range t.Shards {
		r.pools[k] = newPool(k, addr, opts.DialTimeout)
	}
	for k := range r.pools {
		c, err := r.verifyShard(k)
		if err != nil {
			for _, p := range r.pools {
				p.closeAll()
			}
			return nil, err
		}
		r.pools[k].seed(c)
	}
	if opts.HealthInterval > 0 {
		r.healthWG.Add(1)
		go r.healthLoop()
	}
	return r, nil
}

// verifyShard dials shard k and checks the identity it advertises against
// the topology. Used by the opening handshake and by the health monitor's
// revival probes, so a server restarted with the wrong -shard flag is
// refused at both points.
func (r *Router) verifyShard(k int) (*wire.Client, error) {
	p := r.pools[k]
	addr := p.address()
	c, err := wire.DialTimeout(addr, p.timeout)
	if err != nil {
		return nil, fmt.Errorf("shard %d (%s): %w", k, addr, err)
	}
	idx, cnt, store, err := c.ShardInfo()
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("shard %d (%s): handshake: %w", k, addr, err)
	}
	if idx != k || cnt != r.count {
		c.Close()
		return nil, fmt.Errorf("shard: topology mismatch: server %s advertises shard %d of %d, this topology needs shard %d of %d",
			addr, idx, cnt, k, r.count)
	}
	if k == 0 && r.store == "" {
		r.store = store
	} else if store != r.store {
		c.Close()
		return nil, fmt.Errorf("shard: store mismatch: shard 0 runs %q, shard %d (%s) runs %q",
			r.store, k, p.addr, store)
	}
	return c, nil
}

// healthLoop periodically pings every shard: live shards get a ShardInfo
// round-trip on a pooled connection (a failure marks them down), down
// shards get a fresh dial-and-handshake probe and rejoin on success.
func (r *Router) healthLoop() {
	defer r.healthWG.Done()
	t := time.NewTicker(r.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stopHealth:
			return
		case <-t.C:
			r.probeAll()
		}
	}
}

func (r *Router) probeAll() {
	for k, p := range r.pools {
		if p.isDown() {
			if c, err := r.verifyShard(k); err == nil {
				p.seed(c)
				continue
			}
			r.tryFailover(k)
			continue
		}
		err := r.onShard(k, func(c *wire.Client) error {
			_, _, _, err := c.ShardInfo()
			return err
		})
		if err != nil && !errors.Is(err, wire.ErrRemote) && !errors.Is(err, ErrShardDown) {
			p.markDown(err)
		}
	}
}

// tryFailover promotes shard k's warm standby after a failed revival
// probe. The promoted process reopens its media behind a full server on
// the same address, so the pool is retargeted there and the next probe
// tick re-admits the shard through the normal handshake. Single shot: the
// standby is consumed whether or not the new primary ever answers — a
// second failover needs a new topology. The old primary's address is
// abandoned, never probed again (the split-brain guard).
func (r *Router) tryFailover(k int) {
	addr := r.standbys[k]
	if addr == "" {
		return
	}
	p := r.pools[k]
	c, err := wire.DialTimeout(addr, p.timeout)
	if err != nil {
		return // standby unreachable too; retry next tick
	}
	perr := c.Promote()
	c.Close()
	if perr != nil && !errors.Is(perr, wire.ErrRemote) {
		return // transport failure mid-promote; retry next tick
	}
	// A remote refusal means the peer already serves as a primary (an
	// earlier promote's ack was lost, or an operator promoted by hand);
	// the retarget below points the shard at it either way.
	old := p.address()
	r.standbys[k] = ""
	p.retarget(addr, fmt.Errorf("failed over from %s", old))
	r.metrics.failover(k)
}

// Shards returns the topology's shard count.
func (r *Router) Shards() int { return r.count }

// Metrics snapshots the router's per-shard latency histograms and fan-out
// width counters.
func (r *Router) Metrics() RouterStats { return r.metrics.snapshot() }

// ConcurrentBatches mirrors shard.DB: out-of-bracket PutSteps calls do
// their own serialization (here, one server transaction per touched
// shard), so a wire server fronting a Router may run batches from
// different client connections concurrently.
func (r *Router) ConcurrentBatches() bool { return true }

// Close stops the health monitor and drops every connection. It does not
// close the remote stores — the shard servers own those; Close leaves the
// cluster running for the next router. An open broadcast bracket is
// committed first (matching what the servers themselves do when a bracket
// connection disconnects), so no server is left holding its writer lock.
func (r *Router) Close() error {
	r.closeOnce.Do(func() { close(r.stopHealth) })
	r.healthWG.Wait()
	r.stmu.Lock()
	if r.inTxn {
		for k, c := range r.txConns {
			if c == nil {
				continue
			}
			c.Commit()
			c.Close()
			r.txConns[k] = nil
		}
		r.inTxn = false
	}
	r.stmu.Unlock()
	for _, p := range r.pools {
		p.closeAll()
	}
	return nil
}

// --- plumbing ---------------------------------------------------------------

// shardErr adds shard context to a store error, passthrough on one shard —
// the same rule as shard.DB.shardErr, so wrapped bytes are identical.
func (r *Router) shardErr(k int, err error) error {
	if r.count == 1 {
		return err
	}
	return fmt.Errorf("shard %d: %w", k, err)
}

func (r *Router) shardOf(oid storage.OID) (int, error) {
	return shardOfN(oid, r.count)
}

// bare strips the "wire: remote error: " prefix off a server-reported
// error so the bytes the router relays match what an in-process caller
// would have seen; sentinel identity survives (bareError unwraps to the
// coded sentinel). Transport-level errors pass through unchanged.
func bare(err error) error {
	var re *wire.RemoteError
	if errors.As(err, &re) {
		return re.Bare()
	}
	return err
}

// finish returns a connection to shard k's pool when it is still healthy
// (no error, or a remote error — the stream stayed in sync) and discards
// it otherwise. A transport error does not mark the shard down: the next
// checkout dials fresh, and only a failed dial or health probe does.
func (r *Router) finish(k int, c *wire.Client, err error) {
	if err == nil || errors.Is(err, wire.ErrRemote) {
		r.pools[k].put(c)
		return
	}
	r.pools[k].discard(c)
}

// onShard runs one synchronous operation against shard k on a pooled
// connection, timing it and classifying the connection afterwards. The
// returned error is bare (server bytes verbatim) or a fail-fast
// ErrShardDown from the pool.
func (r *Router) onShard(k int, fn func(*wire.Client) error) error {
	c, err := r.pools[k].get()
	if err != nil {
		return err // already names the shard (ErrShardDown)
	}
	stop := r.metrics.start(k)
	err = fn(c)
	stop()
	r.finish(k, c, err)
	return bare(err)
}

// scatter fans one read out to every shard concurrently — each worker on
// its own pooled connection — and gathers the per-shard results in shard
// order. The first failing shard in shard order decides the error,
// wrapped exactly as the in-process facade wraps it (fail-fast pool
// errors already name their shard and pass through).
func scatter[T any](r *Router, fn func(*wire.Client) (T, error)) ([]T, error) {
	parts := make([]T, r.count)
	errs := make([]error, r.count)
	var wg sync.WaitGroup
	for k := 0; k < r.count; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = r.onShard(k, func(c *wire.Client) error {
				var err error
				parts[k], err = fn(c)
				return err
			})
		}(k)
	}
	wg.Wait()
	r.metrics.fanout(r.count)
	for k, err := range errs {
		if err != nil {
			if errors.Is(err, ErrShardDown) {
				return nil, err
			}
			return nil, r.shardErr(k, err)
		}
	}
	return parts, nil
}

// txConn returns shard k's pinned bracket connection, or the same bare
// labbase.ErrNoTransaction an in-process shard would have raised. Every
// mutation except PutSteps routes through here: the servers would happily
// wrap an out-of-bracket mutation in a transaction of their own, which is
// exactly the divergence from Store semantics the router must not allow.
func (r *Router) txConn(k int) (*wire.Client, error) {
	r.stmu.Lock()
	defer r.stmu.Unlock()
	if !r.inTxn {
		return nil, labbase.ErrNoTransaction
	}
	return r.txConns[k], nil
}

// --- transactions -----------------------------------------------------------

// Begin opens the broadcast write bracket: one pinned connection per
// shard, each holding its server's writer lock until Commit, in shard
// order (the global lock order). If a later shard refuses, the brackets
// already opened are committed and released — over the wire an abandoned
// bracket would wedge that server's writer lock for every other client,
// so unlike the in-process facade the router cannot leave them open; the
// committed brackets are empty, so nothing is applied.
func (r *Router) Begin() error {
	r.stmu.Lock()
	defer r.stmu.Unlock()
	if r.inTxn {
		// Nested Begin: forward to the open brackets so the stores produce
		// the same diagnostics as in-process nested Begin.
		for k, c := range r.txConns {
			if err := c.Begin(); err != nil {
				return r.shardErr(k, bare(err))
			}
		}
		return nil
	}
	for k := 0; k < r.count; k++ {
		c, err := r.pools[k].get()
		if err == nil {
			berr := c.Begin()
			if berr == nil {
				r.txConns[k] = c
				continue
			}
			r.finish(k, c, berr)
			err = r.shardErr(k, bare(berr))
		}
		for j := 0; j < k; j++ {
			cj := r.txConns[j]
			r.txConns[j] = nil
			cerr := cj.Commit()
			r.finish(j, cj, cerr)
		}
		return err
	}
	r.inTxn = true
	return nil
}

// Commit closes every shard's bracket in shard order — independent
// durability points, exactly as in-process (DESIGN §9's cross-shard
// non-atomicity). Without an open bracket it still asks shard 0 so the
// store's own ErrNoTransaction bytes come back.
func (r *Router) Commit() error {
	r.stmu.Lock()
	defer r.stmu.Unlock()
	var errs []error
	for k := 0; k < r.count; k++ {
		c := r.txConns[k]
		pinned := c != nil
		if !pinned {
			var err error
			c, err = r.pools[k].get()
			if err != nil {
				errs = append(errs, err)
				continue
			}
		}
		err := c.Commit()
		if pinned {
			r.txConns[k] = nil
		}
		r.finish(k, c, err)
		if err != nil {
			errs = append(errs, r.shardErr(k, bare(err)))
		}
	}
	r.inTxn = false
	return errors.Join(errs...)
}

// InTxn reports whether the broadcast bracket is open.
func (r *Router) InTxn() bool {
	r.stmu.Lock()
	defer r.stmu.Unlock()
	return r.inTxn
}

// --- schema -----------------------------------------------------------------

// routerBroadcastLocked runs a definition on every shard's pinned bracket
// connection in shard order and asserts ID agreement — the wire twin of
// shard.broadcast, with identical divergence bytes. Caller holds stmu
// with the bracket open.
func routerBroadcastLocked[T comparable](r *Router, what, name string, def func(*wire.Client) (T, error)) (T, error) {
	var first T
	for k := 0; k < r.count; k++ {
		got, err := def(r.txConns[k])
		if err != nil {
			return first, r.shardErr(k, bare(err))
		}
		if k == 0 {
			first = got
		} else if got != first {
			return first, fmt.Errorf("shard: catalog divergence: %s %q is %v on shard %d, %v on shard 0",
				what, name, got, k, first)
		}
	}
	return first, nil
}

// requireBracketLocked raises the out-of-transaction error a broadcast
// definition would have hit on shard 0 in-process.
func (r *Router) requireBracketLocked() error {
	if r.inTxn {
		return nil
	}
	return r.shardErr(0, labbase.ErrNoTransaction)
}

// DefineMaterialClass broadcasts the definition to every shard.
func (r *Router) DefineMaterialClass(name, parent string) (labbase.ClassID, error) {
	r.stmu.Lock()
	defer r.stmu.Unlock()
	if err := r.requireBracketLocked(); err != nil {
		return 0, err
	}
	return routerBroadcastLocked(r, "material class", name, func(c *wire.Client) (labbase.ClassID, error) {
		return c.DefineMaterialClass(name, parent)
	})
}

// DefineAttr broadcasts the definition to every shard.
func (r *Router) DefineAttr(name string, kind labbase.Kind) (labbase.AttrID, error) {
	r.stmu.Lock()
	defer r.stmu.Unlock()
	if err := r.requireBracketLocked(); err != nil {
		return 0, err
	}
	return routerBroadcastLocked(r, "attribute", name, func(c *wire.Client) (labbase.AttrID, error) {
		return c.DefineAttr(name, kind)
	})
}

// DefineStepClass broadcasts the definition to every shard.
func (r *Router) DefineStepClass(name string, attrs []labbase.AttrDef) (labbase.StepClassID, labbase.Version, error) {
	r.stmu.Lock()
	defer r.stmu.Unlock()
	if err := r.requireBracketLocked(); err != nil {
		return 0, 0, err
	}
	got, err := routerBroadcastLocked(r, "step class", name, func(c *wire.Client) (idVer, error) {
		id, ver, err := c.DefineStepClass(name, attrs)
		return idVer{labbase.StepClassID(id), labbase.Version(ver)}, err
	})
	return got.id, got.ver, err
}

// DefineState broadcasts the definition to every shard.
func (r *Router) DefineState(name string) (labbase.StateID, error) {
	r.stmu.Lock()
	defer r.stmu.Unlock()
	if err := r.requireBracketLocked(); err != nil {
		return 0, err
	}
	return routerBroadcastLocked(r, "state", name, func(c *wire.Client) (labbase.StateID, error) {
		return c.DefineState(name)
	})
}

// ensureStepSchema is the router's twin of shard.DB.ensureStepSchema: it
// pre-broadcasts the classes/attrs/versions a batch would create
// implicitly, so implicit schema evolution cannot diverge the servers'
// catalogs. Same skip rule: no-op on one shard (nothing to diverge) and
// under StrictSchema.
func (r *Router) ensureStepSchema(specs []labbase.StepSpec) error {
	if r.count == 1 || r.opts.StrictSchema {
		return nil
	}
	r.stmu.Lock()
	defer r.stmu.Unlock()
	for _, spec := range specs {
		key := schemaKey(spec)
		if _, ok := r.known[key]; ok {
			continue
		}
		vers, verr := r.versionsLocked(spec.Class)
		if verr != nil || !versionListed(vers, spec) {
			if err := r.broadcastStepSchemaLocked(spec); err != nil {
				return err
			}
		}
		r.known[key] = struct{}{}
	}
	return nil
}

// versionsLocked reads shard 0's version list for the ensure probe — on
// the pinned bracket connection when one is open (so in-bracket
// definitions are visible), a pooled one otherwise.
func (r *Router) versionsLocked(class string) ([][]string, error) {
	if r.inTxn {
		return r.txConns[0].StepClassVersions(class)
	}
	var vers [][]string
	err := r.onShard(0, func(c *wire.Client) error {
		var e error
		vers, e = c.StepClassVersions(class)
		return e
	})
	return vers, err
}

func (r *Router) broadcastStepSchemaLocked(spec labbase.StepSpec) error {
	attrs := make([]labbase.AttrDef, len(spec.Attrs))
	for i, av := range spec.Attrs {
		attrs[i] = labbase.AttrDef{Name: av.Name, Kind: labbase.KindAny}
	}
	if r.inTxn {
		_, err := routerBroadcastLocked(r, "step class", spec.Class, func(c *wire.Client) (idVer, error) {
			id, ver, err := c.DefineStepClass(spec.Class, attrs)
			return idVer{labbase.StepClassID(id), labbase.Version(ver)}, err
		})
		return err
	}
	var first idVer
	for k := 0; k < r.count; k++ {
		got, err := r.defineStepClassOwnTxn(k, spec.Class, attrs)
		if err != nil {
			return err
		}
		if k == 0 {
			first = got
		} else if got != first {
			return fmt.Errorf("shard: catalog divergence: step class %q is %v on shard %d, %v on shard 0",
				spec.Class, got, k, first)
		}
	}
	return nil
}

// defineStepClassOwnTxn runs one shard's definition in its own server
// bracket on a pooled connection, with the same error bytes as the
// in-process shard.DB.defineStepClassOwnTxn.
func (r *Router) defineStepClassOwnTxn(k int, class string, attrs []labbase.AttrDef) (idVer, error) {
	c, err := r.pools[k].get()
	if err != nil {
		return idVer{}, err
	}
	stop := r.metrics.start(k)
	defer stop()
	if berr := c.Begin(); berr != nil {
		r.finish(k, c, berr)
		return idVer{}, fmt.Errorf("shard %d: %w", k, bare(berr))
	}
	id, ver, derr := c.DefineStepClass(class, attrs)
	cerr := c.Commit()
	r.finish(k, c, errors.Join(derr, cerr))
	if cerr != nil {
		return idVer{}, errors.Join(bare(derr), fmt.Errorf("shard %d: commit: %w", k, bare(cerr)))
	}
	if derr != nil {
		return idVer{}, fmt.Errorf("shard %d: %w", k, bare(derr))
	}
	return idVer{id, ver}, nil
}

// --- catalog listings (shard 0, as in-process) -------------------------------

// MaterialClasses lists material classes from shard 0.
func (r *Router) MaterialClasses() []string { return r.nameList((*wire.Client).MaterialClasses) }

// StepClasses lists step classes from shard 0.
func (r *Router) StepClasses() []string { return r.nameList((*wire.Client).StepClasses) }

// States lists states from shard 0.
func (r *Router) States() []string { return r.nameList((*wire.Client).States) }

func (r *Router) nameList(fn func(*wire.Client) ([]string, error)) []string {
	var names []string
	if err := r.onShard(0, func(c *wire.Client) error {
		var e error
		names, e = fn(c)
		return e
	}); err != nil {
		return nil
	}
	return names
}

// StepClassVersions lists a class's versions from shard 0.
func (r *Router) StepClassVersions(name string) ([][]string, error) {
	var vers [][]string
	err := r.onShard(0, func(c *wire.Client) error {
		var e error
		vers, e = c.StepClassVersions(name)
		return e
	})
	return vers, err
}

// --- mutations (all bracket-bound except PutSteps) ---------------------------

// CreateMaterial routes the material to its home shard by name hash.
func (r *Router) CreateMaterial(class, name, state string, validTime int64) (storage.OID, error) {
	k := ShardFor(name, r.count)
	c, err := r.txConn(k)
	if err != nil {
		return storage.NilOID, err
	}
	stop := r.metrics.start(k)
	defer stop()
	oid, err := c.CreateMaterial(class, name, state, validTime)
	return oid, bare(err)
}

// SetState routes by the material's OID.
func (r *Router) SetState(oid storage.OID, state string) error {
	k, err := r.shardOf(oid)
	if err != nil {
		return err
	}
	c, err := r.txConn(k)
	if err != nil {
		return err
	}
	stop := r.metrics.start(k)
	defer stop()
	return bare(c.SetState(oid, state))
}

// CreateMaterialSet creates the set on its members' shard (ErrCrossShard
// when they span shards, from the same shared helper as in-process).
func (r *Router) CreateMaterialSet(members []storage.OID) (storage.OID, error) {
	home, err := setHomeIn(r.count, members)
	if err != nil {
		return storage.NilOID, err
	}
	c, err := r.txConn(home)
	if err != nil {
		return storage.NilOID, err
	}
	stop := r.metrics.start(home)
	defer stop()
	oid, err := c.CreateMaterialSet(members)
	return oid, bare(err)
}

// RecordStep routes the step to its home shard's pinned connection.
func (r *Router) RecordStep(spec labbase.StepSpec) (storage.OID, error) {
	home, err := routeStepIn(r.count, spec)
	if err != nil {
		return storage.NilOID, err
	}
	if err := r.ensureStepSchema([]labbase.StepSpec{spec}); err != nil {
		return storage.NilOID, err
	}
	c, err := r.txConn(home)
	if err != nil {
		return storage.NilOID, err
	}
	stop := r.metrics.start(home)
	defer stop()
	oid, err := c.RecordStep(spec)
	return oid, bare(err)
}

// PutSteps applies a batch with one wire round-trip and one server
// transaction per touched shard, the sub-batches in flight concurrently:
// every shard's frame is sent before any shard's reply is read (pipelined
// scatter), so N servers commit in parallel. Same contract as shard.DB:
// pre-validated routing, atomic per shard, non-atomic across shards,
// request-order OID stitching, first-failing-index errors per shard.
// Inside a broadcast bracket the batch joins it sequentially instead.
func (r *Router) PutSteps(specs []labbase.StepSpec) ([]storage.OID, error) {
	if r.count == 1 {
		return r.putStepsSingle(specs)
	}
	if r.InTxn() {
		oids := make([]storage.OID, len(specs))
		for i, spec := range specs {
			oid, err := r.RecordStep(spec)
			if err != nil {
				return nil, fmt.Errorf("shard: step batch entry %d (earlier entries recorded): %w", i, err)
			}
			oids[i] = oid
		}
		return oids, nil
	}
	if err := r.ensureStepSchema(specs); err != nil {
		return nil, err
	}
	idxs := make([][]int, r.count)
	parts := make([][]labbase.StepSpec, r.count)
	for i, spec := range specs {
		home, err := routeStepIn(r.count, spec)
		if err != nil {
			return nil, fmt.Errorf("shard: step batch entry %d (batch rejected, nothing recorded): %w", i, err)
		}
		idxs[home] = append(idxs[home], i)
		parts[home] = append(parts[home], spec)
	}

	// Check out one connection per touched shard before sending anything:
	// a down shard rejects the whole batch up front — fail-fast, nothing
	// applied anywhere — instead of surfacing after the other shards
	// already committed their sub-batches.
	type flight struct {
		k    int
		c    *wire.Client
		p    *wire.Pipeline
		fut  *wire.PutStepsFuture
		stop func()
	}
	var flights []flight
	for k := 0; k < r.count; k++ {
		if len(idxs[k]) == 0 {
			continue
		}
		c, err := r.pools[k].get()
		if err != nil {
			for _, f := range flights {
				r.pools[f.k].put(f.c)
			}
			return nil, err
		}
		flights = append(flights, flight{k: k, c: c})
	}
	r.metrics.fanout(len(flights))

	// Send every sub-batch before draining any: all servers start their
	// transactions while the router is still writing to the others.
	// Send/Drain errors land in the futures, so per-shard status is read
	// off fut.Err uniformly below.
	for i := range flights {
		f := &flights[i]
		f.stop = r.metrics.start(f.k)
		f.p = f.c.Pipeline()
		f.fut = f.p.PutSteps(parts[f.k])
		f.p.Send()
	}

	// Drain in shard order, stitching each shard's OIDs back into request
	// order and re-basing any failing sub-batch index onto the original
	// batch position.
	oids := make([]storage.OID, len(specs))
	var errs []error
	for i := range flights {
		f := &flights[i]
		f.p.Drain()
		f.stop()
		err := f.fut.Err
		r.finish(f.k, f.c, err)
		if err == nil {
			if len(f.fut.OIDs) == len(idxs[f.k]) {
				for j, oid := range f.fut.OIDs {
					oids[idxs[f.k][j]] = oid
				}
			} else {
				err = fmt.Errorf("wire: bad step batch reply")
			}
		}
		if err != nil {
			if rbe, ok := err.(*wire.RemoteBatchError); ok && rbe.Index >= 0 && rbe.Index < len(idxs[f.k]) {
				errs = append(errs, &BatchError{Index: idxs[f.k][rbe.Index], Shard: f.k, Err: rbe.BatchError.Err})
			} else {
				errs = append(errs, r.shardErr(f.k, bare(err)))
			}
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return oids, nil
}

// putStepsSingle is the one-shard fast path: the whole batch in one round
// trip, on the pinned bracket connection when one is open. A server-side
// labbase.BatchError comes back structurally (codeBatch) and is returned
// as the same *labbase.BatchError a plain DB would have produced.
func (r *Router) putStepsSingle(specs []labbase.StepSpec) ([]storage.OID, error) {
	r.stmu.Lock()
	c, pinned := r.txConns[0], false
	if r.inTxn {
		pinned = true
	}
	r.stmu.Unlock()
	if !pinned {
		var err error
		c, err = r.pools[0].get()
		if err != nil {
			return nil, err
		}
	}
	stop := r.metrics.start(0)
	oids, err := c.PutSteps(specs)
	stop()
	if !pinned {
		r.finish(0, c, err)
	}
	if err != nil {
		if rbe, ok := err.(*wire.RemoteBatchError); ok {
			be := rbe.BatchError
			return nil, &be
		}
		return nil, bare(err)
	}
	return oids, nil
}

// --- routed reads -----------------------------------------------------------

// LookupMaterial consults only the name's home shard.
func (r *Router) LookupMaterial(name string) (storage.OID, bool) {
	k := ShardFor(name, r.count)
	var (
		oid   storage.OID
		found bool
	)
	if err := r.onShard(k, func(c *wire.Client) error {
		var e error
		oid, found, e = c.LookupMaterial(name)
		return e
	}); err != nil {
		return storage.NilOID, false
	}
	return oid, found
}

// GetMaterial routes by OID.
func (r *Router) GetMaterial(oid storage.OID) (*labbase.Material, error) {
	k, err := r.shardOf(oid)
	if err != nil {
		return nil, err
	}
	var m *labbase.Material
	err = r.onShard(k, func(c *wire.Client) error {
		var e error
		m, e = c.GetMaterial(oid)
		return e
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// State routes by OID.
func (r *Router) State(oid storage.OID) (string, error) {
	k, err := r.shardOf(oid)
	if err != nil {
		return "", err
	}
	var st string
	err = r.onShard(k, func(c *wire.Client) error {
		var e error
		st, e = c.State(oid)
		return e
	})
	return st, err
}

// SetMembers routes by the set's OID.
func (r *Router) SetMembers(oid storage.OID) ([]storage.OID, error) {
	return r.routedOIDs(oid, func(c *wire.Client) ([]storage.OID, error) {
		return c.SetMembers(oid)
	})
}

// StepsInvolving routes by OID.
func (r *Router) StepsInvolving(oid storage.OID) ([]storage.OID, error) {
	return r.routedOIDs(oid, func(c *wire.Client) ([]storage.OID, error) {
		return c.StepsInvolving(oid)
	})
}

func (r *Router) routedOIDs(oid storage.OID, fn func(*wire.Client) ([]storage.OID, error)) ([]storage.OID, error) {
	k, err := r.shardOf(oid)
	if err != nil {
		return nil, err
	}
	var out []storage.OID
	err = r.onShard(k, func(c *wire.Client) error {
		var e error
		out, e = fn(c)
		return e
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GetStep routes by OID.
func (r *Router) GetStep(oid storage.OID) (*labbase.Step, error) {
	k, err := r.shardOf(oid)
	if err != nil {
		return nil, err
	}
	var st *labbase.Step
	err = r.onShard(k, func(c *wire.Client) error {
		var e error
		st, e = c.GetStep(oid)
		return e
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// History routes by OID.
func (r *Router) History(oid storage.OID) ([]labbase.HistoryEntry, error) {
	k, err := r.shardOf(oid)
	if err != nil {
		return nil, err
	}
	var out []labbase.HistoryEntry
	err = r.onShard(k, func(c *wire.Client) error {
		var e error
		out, e = c.History(oid)
		return e
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (r *Router) mostRecentOn(oid storage.OID, fn func(*wire.Client) (labbase.Value, storage.OID, bool, error)) (labbase.Value, storage.OID, bool, error) {
	k, err := r.shardOf(oid)
	if err != nil {
		return labbase.Value{}, storage.NilOID, false, err
	}
	var (
		v     labbase.Value
		src   storage.OID
		found bool
	)
	err = r.onShard(k, func(c *wire.Client) error {
		var e error
		v, src, found, e = fn(c)
		return e
	})
	if err != nil {
		return labbase.Value{}, storage.NilOID, false, err
	}
	return v, src, found, nil
}

// MostRecent routes by OID.
func (r *Router) MostRecent(oid storage.OID, attr string) (labbase.Value, storage.OID, bool, error) {
	return r.mostRecentOn(oid, func(c *wire.Client) (labbase.Value, storage.OID, bool, error) {
		return c.MostRecent(oid, attr)
	})
}

// MostRecentScan routes by OID.
func (r *Router) MostRecentScan(oid storage.OID, attr string) (labbase.Value, storage.OID, bool, error) {
	return r.mostRecentOn(oid, func(c *wire.Client) (labbase.Value, storage.OID, bool, error) {
		return c.MostRecentScan(oid, attr)
	})
}

// MostRecentAsOf routes by OID.
func (r *Router) MostRecentAsOf(oid storage.OID, attr string, t int64) (labbase.Value, storage.OID, bool, error) {
	return r.mostRecentOn(oid, func(c *wire.Client) (labbase.Value, storage.OID, bool, error) {
		return c.MostRecentAsOf(oid, attr, t)
	})
}

// AttrTimeline routes by OID.
func (r *Router) AttrTimeline(oid storage.OID, attr string) ([]labbase.TimelineEntry, error) {
	k, err := r.shardOf(oid)
	if err != nil {
		return nil, err
	}
	var out []labbase.TimelineEntry
	err = r.onShard(k, func(c *wire.Client) error {
		var e error
		out, e = c.AttrTimeline(oid, attr)
		return e
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// --- scatter-gather reads (merge rule of DESIGN §9) --------------------------

// MaterialsInState concatenates the shards' OID-sorted lists in shard
// order — globally OID-sorted, because the shard index lives in the OID's
// high bits (the same merge the in-process facade uses).
func (r *Router) MaterialsInState(state string) ([]storage.OID, error) {
	parts, err := scatter(r, func(c *wire.Client) ([]storage.OID, error) {
		return c.MaterialsInState(state)
	})
	if err != nil {
		return nil, err
	}
	if r.count == 1 {
		return parts[0], nil
	}
	var all []storage.OID
	for _, part := range parts {
		all = append(all, part...)
	}
	return all, nil
}

func (r *Router) sumCount(fn func(*wire.Client) (uint64, error)) (uint64, error) {
	parts, err := scatter(r, fn)
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, c := range parts {
		total += c
	}
	return total, nil
}

// CountInState sums the per-shard counts.
func (r *Router) CountInState(state string) (uint64, error) {
	return r.sumCount(func(c *wire.Client) (uint64, error) { return c.CountInState(state) })
}

// CountMaterials sums the per-shard counts.
func (r *Router) CountMaterials(class string) (uint64, error) {
	return r.sumCount(func(c *wire.Client) (uint64, error) { return c.CountMaterials(class) })
}

// CountSteps sums the per-shard counts.
func (r *Router) CountSteps(class string) (uint64, error) {
	return r.sumCount(func(c *wire.Client) (uint64, error) { return c.CountSteps(class) })
}

// ScanMaterials gathers every shard's materials concurrently, then runs
// fn shard-major locally — same visit order as in-process. An
// early-stopping fn cannot shorten the server-side scans (each shard's
// full list has already shipped), but its error aborts with the same
// wrapped bytes.
func (r *Router) ScanMaterials(class string, fn func(*labbase.Material) error) error {
	parts, err := scatter(r, func(c *wire.Client) ([]*labbase.Material, error) {
		var ms []*labbase.Material
		err := c.ScanMaterials(class, func(m *labbase.Material) error {
			ms = append(ms, m)
			return nil
		})
		return ms, err
	})
	if err != nil {
		return err
	}
	return replayMaterials(r, parts, fn)
}

// ScanAllMaterials is ScanMaterials over every class.
func (r *Router) ScanAllMaterials(fn func(*labbase.Material) error) error {
	parts, err := scatter(r, func(c *wire.Client) ([]*labbase.Material, error) {
		var ms []*labbase.Material
		err := c.ScanAllMaterials(func(m *labbase.Material) error {
			ms = append(ms, m)
			return nil
		})
		return ms, err
	})
	if err != nil {
		return err
	}
	return replayMaterials(r, parts, fn)
}

func replayMaterials(r *Router, parts [][]*labbase.Material, fn func(*labbase.Material) error) error {
	for k, ms := range parts {
		for _, m := range ms {
			if err := fn(m); err != nil {
				return r.shardErr(k, err)
			}
		}
	}
	return nil
}

// ScanSteps gathers every shard's steps concurrently, then runs fn
// shard-major locally (see ScanMaterials).
func (r *Router) ScanSteps(class string, fn func(*labbase.Step) error) error {
	parts, err := scatter(r, func(c *wire.Client) ([]*labbase.Step, error) {
		var sts []*labbase.Step
		err := c.ScanSteps(class, func(st *labbase.Step) error {
			sts = append(sts, st)
			return nil
		})
		return sts, err
	})
	if err != nil {
		return err
	}
	for k, sts := range parts {
		for _, st := range sts {
			if err := fn(st); err != nil {
				return r.shardErr(k, err)
			}
		}
	}
	return nil
}

// Dump sums the per-shard audit counters.
func (r *Router) Dump() (labbase.DumpStats, error) {
	parts, err := scatter(r, func(c *wire.Client) (labbase.DumpStats, error) {
		return c.Dump()
	})
	if err != nil {
		return labbase.DumpStats{}, err
	}
	var total labbase.DumpStats
	for _, ds := range parts {
		total.Materials += ds.Materials
		total.Steps += ds.Steps
		total.AttrValues += ds.AttrValues
		total.HistoryRead += ds.HistoryRead
	}
	return total, nil
}

// StoreStats sums the servers' storage counters; the name is shard 0's
// backend name, suffixed with the shard count beyond one (as in-process).
// Stats are best-effort: an unreachable shard yields zeros and a name
// saying so, since the Store signature has no error to return.
func (r *Router) StoreStats() (string, storage.Stats) {
	type nameStats struct {
		name string
		st   storage.Stats
	}
	parts, err := scatter(r, func(c *wire.Client) (nameStats, error) {
		name, st, err := c.Stats()
		return nameStats{name, st}, err
	})
	if err != nil {
		return "shard: unreachable", storage.Stats{}
	}
	name, total := parts[0].name, parts[0].st
	for _, p := range parts[1:] {
		total.Faults += p.st.Faults
		total.PageWrites += p.st.PageWrites
		total.Reads += p.st.Reads
		total.Writes += p.st.Writes
		total.Allocs += p.st.Allocs
		total.LockWaits += p.st.LockWaits
		total.SizeBytes += p.st.SizeBytes
		total.LiveObjects += p.st.LiveObjects
		total.LiveBytes += p.st.LiveBytes
	}
	if r.count > 1 {
		name = fmt.Sprintf("%s×%d", name, r.count)
	}
	return name, total
}

// routerSnap adapts the live router to the Snapshot surface. The
// consistency guarantee is weaker than in-process snapshots: each read
// captures fresh per-server snapshots at call time (the servers' own read
// paths do that), so two reads through the same handle may observe
// different cluster states. Cross-shard reads still never see a torn
// mid-transaction state on any single shard.
type routerSnap struct{ *Router }

func (s routerSnap) Close() error { return nil }

// Snapshot returns a read handle over the live router (see routerSnap for
// the weaker cross-call guarantee).
func (r *Router) Snapshot() (labbase.Snapshot, error) { return routerSnap{r}, nil }
