// Package shard partitions a LabBase across N independent labbase.DB
// instances, each with its own storage manager (its own pagefile, redo log
// and group-commit pipeline) and its own lock domain, behind the same
// labbase.Store surface as a single DB. Materials are routed by an FNV-1a
// hash of the material name; everything a step touches must live on one
// shard (see ErrCrossShard and DESIGN §9).
//
// OIDs stay plain storage.OID: the shard number is carved out of the high
// bits of the 56-bit per-segment index, so an OID is self-describing about
// which shard owns it and the wire protocol, client, and every layer above
// labbase are shard-agnostic. Shard 0's encoding is the identity, which is
// what makes a 1-shard shard.DB byte-identical to a plain labbase.DB —
// including on disk.
package shard

import (
	"fmt"

	"labflow/internal/storage"
)

// Shard-bit layout: storage.OID is segment(8) << 56 | index(56). The shard
// number occupies the top shardBits of the index (bits 48..55), leaving
// localBits of real per-segment index space per shard. Shard 0 therefore
// encodes as the identity, and global OIDs from different shards never
// collide.
const (
	shardBits = 8
	localBits = 56 - shardBits

	// MaxShards is the largest shard count the OID encoding can address.
	MaxShards = 1 << shardBits

	shardShift = localBits
	localMask  = (uint64(1) << localBits) - 1
	shardMask  = uint64(MaxShards-1) << shardShift
)

// ShardOfOID returns the shard number encoded in an OID. It does not
// validate the number against any particular shard count.
func ShardOfOID(oid storage.OID) int {
	return int(uint64(oid) >> shardShift & uint64(MaxShards-1))
}

// withShard returns oid with the shard number stamped into the shard bits.
// The caller guarantees the local index fits (see mapper.tag).
func withShard(oid storage.OID, shard int) storage.OID {
	return oid | storage.OID(uint64(shard)<<shardShift)
}

// withoutShard strips the shard bits, recovering the local OID the inner
// storage manager allocated.
func withoutShard(oid storage.OID) storage.OID {
	return oid &^ storage.OID(shardMask)
}

// mapper is the storage.Manager wrapper that gives each shard its slice of
// the OID space. OIDs handed out by Allocate* carry the shard number in
// their high index bits; OIDs coming back in through Read/Write/Free are
// validated to belong to this shard and stripped back to local form. The
// inner labbase.DB therefore persists global OIDs verbatim inside records
// (history entries, set members, indexes) with no translation layer, and a
// global OID presented to the wrong shard fails loudly as a missing object.
type mapper struct {
	inner storage.Manager
	shard int
}

var _ storage.Manager = (*mapper)(nil)

// tag stamps the shard number into a freshly allocated local OID.
func (m *mapper) tag(oid storage.OID) (storage.OID, error) {
	if uint64(oid.Index()) > localMask {
		return storage.NilOID, fmt.Errorf("shard %d: segment %v local index space exhausted: %w",
			m.shard, oid.Segment(), storage.ErrSegmentFull)
	}
	return withShard(oid, m.shard), nil
}

// untag validates that a global OID belongs to this shard and strips the
// shard bits. A wrong-shard OID is reported as a missing object so callers'
// existing storage.ErrNoSuchObject handling applies; the message names both
// shards because this is how cross-shard references surface.
func (m *mapper) untag(oid storage.OID) (storage.OID, error) {
	if got := ShardOfOID(oid); got != m.shard {
		return storage.NilOID, fmt.Errorf("shard %d: %v belongs to shard %d: %w",
			m.shard, oid, got, storage.ErrNoSuchObject)
	}
	return withoutShard(oid), nil
}

func (m *mapper) Name() string { return m.inner.Name() }

func (m *mapper) Allocate(seg storage.SegmentID, data []byte) (storage.OID, error) {
	oid, err := m.inner.Allocate(seg, data)
	if err != nil {
		return storage.NilOID, err
	}
	return m.tag(oid)
}

func (m *mapper) AllocateCluster(seg storage.SegmentID, data []byte) (storage.OID, error) {
	oid, err := m.inner.AllocateCluster(seg, data)
	if err != nil {
		return storage.NilOID, err
	}
	return m.tag(oid)
}

func (m *mapper) AllocateNear(near storage.OID, data []byte) (storage.OID, error) {
	local, err := m.untag(near)
	if err != nil {
		return storage.NilOID, err
	}
	oid, err := m.inner.AllocateNear(local, data)
	if err != nil {
		return storage.NilOID, err
	}
	return m.tag(oid)
}

func (m *mapper) Read(oid storage.OID) ([]byte, error) {
	local, err := m.untag(oid)
	if err != nil {
		return nil, err
	}
	return m.inner.Read(local)
}

func (m *mapper) Write(oid storage.OID, data []byte) error {
	local, err := m.untag(oid)
	if err != nil {
		return err
	}
	return m.inner.Write(local, data)
}

func (m *mapper) Free(oid storage.OID) error {
	local, err := m.untag(oid)
	if err != nil {
		return err
	}
	return m.inner.Free(local)
}

func (m *mapper) Root() (storage.OID, error) {
	oid, err := m.inner.Root()
	if err != nil || oid.IsNil() {
		return oid, err
	}
	return m.tag(oid)
}

func (m *mapper) SetRoot(oid storage.OID) error {
	if oid.IsNil() {
		return m.inner.SetRoot(oid)
	}
	local, err := m.untag(oid)
	if err != nil {
		return err
	}
	return m.inner.SetRoot(local)
}

func (m *mapper) Begin() error         { return m.inner.Begin() }
func (m *mapper) Commit() error        { return m.inner.Commit() }
func (m *mapper) Stats() storage.Stats { return m.inner.Stats() }
func (m *mapper) Close() error         { return m.inner.Close() }
