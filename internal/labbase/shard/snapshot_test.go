package shard

import (
	"fmt"
	"sync"
	"testing"

	"labflow/internal/labbase"
	"labflow/internal/storage"
)

// TestShardSnapshotNeverTornMidBatch races cross-shard snapshot captures
// against writers streaming PutSteps batches over 4 shards (run under
// -race). Each material receives a monotone per-material sequence, so every
// capture must satisfy, per material: history is the contiguous prefix
// 0..n-1 and the valid-time most-recent equals its last entry. Across
// shards, the aggregate CountSteps from the same handle must equal the sum
// of the history lengths it reports — the up-front per-shard capture is
// what keeps the count and the histories from drifting apart while the
// parallel batch apply is mid-flight.
func TestShardSnapshotNeverTornMidBatch(t *testing.T) {
	db := openShards(t, 4)
	const mats = 8
	oids := make([]storage.OID, mats)
	begin(t, db)
	if _, err := db.DefineMaterialClass("sample", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineState("received"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.DefineStepClass("measure", []labbase.AttrDef{{Name: "reading", Kind: labbase.KindInt}}); err != nil {
		t.Fatal(err)
	}
	for i := range oids {
		oid, err := db.CreateMaterial("sample", fmt.Sprintf("t-%d", i), "received", int64(i))
		if err != nil {
			t.Fatal(err)
		}
		oids[i] = oid
	}
	commit(t, db)

	const (
		readers  = 4
		batches  = 40
		batchLen = 6
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := db.Snapshot()
				if err != nil {
					errs <- err
					return
				}
				var histTotal uint64
				bad := false
				for m, oid := range oids {
					h, err := snap.History(oid)
					if err != nil {
						errs <- fmt.Errorf("reader %d: History(m%d): %w", r, m, err)
						bad = true
						break
					}
					for j, e := range h {
						if e.ValidTime != int64(j) {
							errs <- fmt.Errorf("reader %d: m%d history[%d].ValidTime = %d; not the contiguous prefix", r, m, j, e.ValidTime)
							bad = true
							break
						}
					}
					v, _, found, err := snap.MostRecent(oid, "reading")
					if err != nil {
						errs <- fmt.Errorf("reader %d: MostRecent(m%d): %w", r, m, err)
						bad = true
						break
					}
					if found != (len(h) > 0) || (found && v.Int != int64(len(h)-1)) {
						errs <- fmt.Errorf("reader %d: m%d torn: most-recent %v (found=%v) vs %d history entries", r, m, v, found, len(h))
						bad = true
						break
					}
					histTotal += uint64(len(h))
				}
				if !bad {
					if n, err := snap.CountSteps("measure"); err != nil || n != histTotal {
						errs <- fmt.Errorf("reader %d: CountSteps = %d, %w; histories sum to %d in the same capture", r, n, err, histTotal)
						bad = true
					}
				}
				snap.Close()
				if bad {
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		next := make([]int64, mats)
		for b := 0; b < batches; b++ {
			// Each batch spans every material, so the parallel apply fans
			// out across all four shards at once.
			specs := make([]labbase.StepSpec, 0, mats*batchLen)
			for m := range oids {
				for k := 0; k < batchLen; k++ {
					specs = append(specs, labbase.StepSpec{
						Class: "measure", ValidTime: next[m],
						Materials: []storage.OID{oids[m]},
						Attrs:     []labbase.AttrValue{{Name: "reading", Value: labbase.Int64(next[m])}},
					})
					next[m]++
				}
			}
			if _, err := db.PutSteps(specs); err != nil {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
