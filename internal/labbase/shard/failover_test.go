package shard

import (
	"errors"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"labflow/internal/labbase"
	"labflow/internal/storage/memstore"
	"labflow/internal/storage/repl"
	"labflow/internal/wire"
)

// TestRouterFailover kills one shard's primary server and checks the
// health monitor's warm-standby path end to end: the down shard's standby
// is promoted over the wire, the pool retargets to the standby's address,
// and once a full server answers there the shard serves again — all
// without a new router. The post-promotion takeover (a real server
// replacing the StandbyServer on the same address) is the process-level
// flow in cmd/labbase-server, compressed in-process here.
func TestRouterFailover(t *testing.T) {
	const n = 2
	topo := Topology{Shards: make([]string, n), Standbys: make([]string, n)}
	members := make([]*Member, n)
	stops := make([]func(), n)
	for k := 0; k < n; k++ {
		m, err := OpenMember(memstore.Open("fo-mm"), k, n, labbase.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		members[k] = m
		t.Cleanup(func() { m.Close() })
		topo.Shards[k], stops[k] = serveStore(t, m, "127.0.0.1:0")
	}

	// Shard 1's warm standby: a StandbyServer over its own media. The
	// router only drives the promote handshake; record shipping itself is
	// exercised by the storage and wire tests.
	st, err := repl.OpenFileStandby(filepath.Join(t.TempDir(), "standby1.db"), 4)
	if err != nil {
		t.Fatal(err)
	}
	ss := wire.NewStandbyServer(st)
	ss.SetLogf(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	standbyAddr := ln.Addr().String()
	topo.Standbys[1] = standbyAddr
	promoted := make(chan struct{})
	go func() {
		ss.Serve(ln)
		close(promoted)
	}()
	t.Cleanup(func() {
		ln.Close()
		ss.Shutdown()
		st.Close()
	})

	r := openTestRouter(t, topo, RouterOptions{HealthInterval: 25 * time.Millisecond})
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DefineMaterialClass("clone", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DefineState("waiting"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateMaterial("clone", "m-on-1", "waiting", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}

	// Kill shard 1's primary. The health monitor marks it down, fails the
	// revival probe, and promotes the standby.
	stops[1]()
	select {
	case <-promoted:
	case <-time.After(10 * time.Second):
		t.Fatal("standby was never promoted")
	}
	if !ss.Promoted() {
		t.Fatal("standby server shut down without promotion")
	}

	// The promoted process reopens its media and serves on the standby's
	// address; here the member's store stands in for the replicated media.
	_, stopNew := serveStore(t, members[1], standbyAddr)
	t.Cleanup(stopNew)

	// The shard rejoins through the normal handshake on the new address.
	deadline := time.Now().Add(10 * time.Second) //lint:allow wallclock test timeout bound
	for {
		if _, err := r.CountMaterials("clone"); err == nil {
			break
		} else if time.Now().After(deadline) { //lint:allow wallclock test timeout bound
			t.Fatalf("shard never rejoined after failover: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := r.pools[1].address(); got != standbyAddr {
		t.Errorf("shard 1 pool targets %s, want promoted standby %s", got, standbyAddr)
	}
	if fo := r.Metrics().Failovers; len(fo) != n || fo[1] != 1 || fo[0] != 0 {
		t.Errorf("Failovers = %v, want exactly one on shard 1", fo)
	}
	// Data routed to shard 1 before the failover is served by the
	// promoted member.
	if oid, found := r.LookupMaterial("m-on-1"); !found || oid.IsNil() {
		t.Errorf("material lost across failover (found=%v)", found)
	}
}

// TestPoolClosedState pins the close-state contract directly: a checkout
// after closeAll fails, and a connection returned after closeAll is closed
// rather than parked (the pre-fix behavior leaked it in the idle list).
func TestPoolClosedState(t *testing.T) {
	db, err := labbase.Open(memstore.Open("pool-mm"), labbase.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	addr, stop := serveStore(t, db, "127.0.0.1:0")
	t.Cleanup(stop)

	p := newPool(0, addr, time.Second)
	c, err := p.get()
	if err != nil {
		t.Fatal(err)
	}
	p.closeAll()

	p.put(c) // in-flight return after close: must close, not park
	if len(p.idle) != 0 {
		t.Fatalf("connection parked in a closed pool (%d idle)", len(p.idle))
	}
	if _, _, _, err := c.ShardInfo(); err == nil {
		t.Error("connection still usable after put into closed pool")
	}
	if _, err := p.get(); !errors.Is(err, ErrShardDown) || !strings.Contains(err.Error(), "closed") {
		t.Errorf("get after close: err = %v, want router-closed ErrShardDown", err)
	}
}

// TestRouterCloseRace races Close against in-flight operations: under the
// race detector this pins the pool's closed-state handling (no connection
// may be parked after closeAll, no double close, no lost update).
func TestRouterCloseRace(t *testing.T) {
	topo, _ := startCluster(t, 2)
	r, err := OpenRouter(topo, RouterOptions{HealthInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 100; j++ {
				if _, err := r.CountMaterials("anything"); err != nil {
					return // closed under us — expected
				}
			}
		}()
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	r.Close()
	wg.Wait()
	// After Close every pool refuses checkouts.
	for k, p := range r.pools {
		if _, err := p.get(); err == nil {
			t.Errorf("pool %d still hands out connections after Close", k)
		}
	}
}
