package labbase

import (
	"testing"

	"labflow/internal/rec"
)

// FuzzDecodeValue feeds arbitrary bytes to the value decoder: it must never
// panic, and whatever it decodes must re-encode and re-decode stably.
func FuzzDecodeValue(f *testing.F) {
	for _, v := range []Value{
		Int64(7), Float64(1.5), String("ACGT"), Bool(true),
		ListOf(Int64(1), ListOf(String("x"))),
	} {
		e := rec.NewEncoder(32)
		EncodeValue(e, v)
		f.Add(e.Bytes())
	}
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := rec.NewDecoder(data)
		v := DecodeValue(d)
		if d.Err() != nil {
			return
		}
		e := rec.NewEncoder(len(data))
		EncodeValue(e, v)
		d2 := rec.NewDecoder(e.Bytes())
		v2 := DecodeValue(d2)
		if d2.Err() != nil || !v.Equal(v2) {
			t.Fatalf("re-decode mismatch: %v vs %v", v, v2)
		}
	})
}

// FuzzDecodeStepRec feeds arbitrary bytes to the step-record decoder.
func FuzzDecodeStepRec(f *testing.F) {
	s := &stepRec{
		classID: 1, version: 1, validTime: 10, txnTime: 2,
		attrIDs:  []AttrID{1},
		attrVals: []Value{String("x")},
	}
	f.Add(s.encode())
	f.Add([]byte{1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeStepRec(data)
		if err != nil {
			return
		}
		// A decodable record re-encodes to something decodable.
		if _, err := decodeStepRec(rec.encode()); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

// FuzzDecodeMaterialRec feeds arbitrary bytes to the material decoder.
func FuzzDecodeMaterialRec(f *testing.F) {
	m := &materialRec{classID: 1, stateID: 2, createdAt: 3, name: "c1"}
	f.Add(m.encode())
	f.Add([]byte{1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeMaterialRec(data)
		if err != nil {
			return
		}
		if _, err := decodeMaterialRec(rec.encode()); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
