package labbase

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"labflow/internal/rec"
	"labflow/internal/storage"
)

// Kind enumerates attribute value types. KindAny, on an attribute
// definition, accepts values of every kind — LabBase's schema flexibility.
type Kind uint8

const (
	// KindAny is only meaningful on attribute definitions.
	KindAny Kind = iota
	// KindNil is the absent value.
	KindNil
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a float64.
	KindFloat
	// KindString is a string (DNA sequences are stored as strings).
	KindString
	// KindBool is a boolean.
	KindBool
	// KindOID is a reference to a material, step or set.
	KindOID
	// KindList is an ordered list of values — the paper's "set and list
	// generation" requirement (BLAST hit lists) is stored with these.
	KindList
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindAny:
		return "any"
	case KindNil:
		return "nil"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindOID:
		return "oid"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed attribute value.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
	OID   storage.OID
	List  []Value
}

// Nil returns the absent value.
func Nil() Value { return Value{Kind: KindNil} }

// Int64 wraps an integer.
func Int64(v int64) Value { return Value{Kind: KindInt, Int: v} }

// Float64 wraps a float.
func Float64(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// String wraps a string.
func String(v string) Value { return Value{Kind: KindString, Str: v} }

// Bool wraps a boolean.
func Bool(v bool) Value {
	if v {
		return Value{Kind: KindBool, Int: 1}
	}
	return Value{Kind: KindBool}
}

// Ref wraps an object reference.
func Ref(oid storage.OID) Value { return Value{Kind: KindOID, OID: oid} }

// List wraps a list of values.
func ListOf(vs ...Value) Value { return Value{Kind: KindList, List: vs} }

// AsBool reports the boolean interpretation (false for non-bools).
func (v Value) AsBool() bool { return v.Kind == KindBool && v.Int != 0 }

// IsNil reports whether the value is absent.
func (v Value) IsNil() bool { return v.Kind == KindNil }

// Equal reports deep equality.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindNil:
		return true
	case KindInt, KindBool:
		return v.Int == o.Int
	case KindFloat:
		// Bit equality, so stored NaNs compare equal to themselves.
		return math.Float64bits(v.Float) == math.Float64bits(o.Float)
	case KindString:
		return v.Str == o.Str
	case KindOID:
		return v.OID == o.OID
	case KindList:
		if len(v.List) != len(o.List) {
			return false
		}
		for i := range v.List {
			if !v.List[i].Equal(o.List[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// GoString returns a compact display form.
func (v Value) String() string {
	switch v.Kind {
	case KindNil:
		return "nil"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.Str)
	case KindBool:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	case KindOID:
		return v.OID.String()
	case KindList:
		parts := make([]string, len(v.List))
		for i, e := range v.List {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	default:
		return fmt.Sprintf("value(kind=%d)", v.Kind)
	}
}

// encode appends the value to e.
func (v Value) encode(e *rec.Encoder) {
	e.Byte(byte(v.Kind))
	switch v.Kind {
	case KindNil, KindAny:
	case KindInt, KindBool:
		e.Int(v.Int)
	case KindFloat:
		e.Float(v.Float)
	case KindString:
		e.String(v.Str)
	case KindOID:
		e.Uint(uint64(v.OID))
	case KindList:
		e.Uint(uint64(len(v.List)))
		for _, el := range v.List {
			el.encode(e)
		}
	}
}

// decodeValue reads a value from d.
func decodeValue(d *rec.Decoder) Value {
	k := Kind(d.Byte())
	// KindAny marks untyped attribute definitions; concrete values are
	// always a specific kind.
	if k == KindAny || k > KindList {
		d.Corrupt(fmt.Sprintf("unknown value kind %d", k))
		return Nil()
	}
	v := Value{Kind: k}
	switch k {
	case KindNil:
	case KindInt, KindBool:
		v.Int = d.Int()
	case KindFloat:
		v.Float = d.Float()
	case KindString:
		v.Str = d.String()
	case KindOID:
		v.OID = storage.OID(d.Uint())
	case KindList:
		n := d.Count(1 << 24)
		if d.Err() != nil {
			return Nil()
		}
		v.List = make([]Value, n)
		for i := range v.List {
			v.List[i] = decodeValue(d)
		}
	}
	return v
}

// matches reports whether the value is acceptable for an attribute of kind k.
func (v Value) matches(k Kind) bool {
	return k == KindAny || v.Kind == KindNil || v.Kind == k
}

// EncodeValue appends v to e; the wire protocol shares the storage encoding.
func EncodeValue(e *rec.Encoder, v Value) { v.encode(e) }

// DecodeValue reads a value written by EncodeValue.
func DecodeValue(d *rec.Decoder) Value { return decodeValue(d) }
