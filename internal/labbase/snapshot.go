package labbase

import (
	"fmt"
	"sync"
	"sync/atomic"

	"labflow/internal/storage"
)

// This file implements the MVCC snapshot machinery behind DB's lock-free
// read path. The design is read-through copy-on-write:
//
//   - The writer (under DB.wmu) mutates its working state — catalog,
//     counters, treap index roots, and the storage-manager records — in
//     place, exactly as the locked implementation did. At the end of every
//     mutating entry point it publishes an immutable dbState via one atomic
//     pointer swap. Only touched structures are copied: the catalog and
//     counters are cloned at publish when an op marked them, the treap
//     roots are shared structurally.
//
//   - Readers capture the current dbState once (Snap), pin its epoch in a
//     reader slot, and run entirely lock-free: catalog, counters and index
//     lookups come from the captured state; record reads go through the
//     shared decode caches and storage manager (which both return copies)
//     and are then corrected through the version table below.
//
//   - Records that are mutated in place (material records, most-recent
//     indexes) get a pre-image saved into the version table, keyed by OID
//     and tagged with the epoch of the overwriting publish, strictly
//     *before* the storage write. A reader at epoch e that sees post-image
//     bytes therefore always finds the pre-image for the oldest overwrite
//     after e. Records that only grow in place (history chunks, extent
//     chunks — entries are never rewritten, the count advances last) need
//     no pre-images: the snapshot's counts truncate them to the
//     capture-time prefix. Immutable records (steps, sets) need nothing.
//
// Sequential runs stay byte-identical to the locked implementation: with
// no concurrent readers pinning old epochs, every publish prunes the
// version table empty, so the read path performs exactly the same storage
// and cache accesses (and thus the same simulated-fault accounting) as
// before.

// dbState is one immutable published snapshot of the database's in-memory
// state. All fields are read-only once the state is stored.
type dbState struct {
	epoch      uint64
	cat        *catalog
	cnt        *counters
	stateRoots []*treapNode[uint64, struct{}] // index = StateID-1
	nameRoot   *treapNode[string, storage.OID]
	invRoot    *treapNode[uint64, *invList] // material OID -> steps, newest first
}

// --- version table -----------------------------------------------------------

// verEntry is one saved pre-image: the value its OID had just before the
// write published at epoch. pre is *materialRec or []byte (most-recent
// index bytes); nil records a creation (the object did not exist before
// epoch).
type verEntry struct {
	epoch uint64
	pre   any
}

// verTable holds pre-images of in-place-overwritten records for the benefit
// of readers pinned to older epochs. Entries are saved by the writer (under
// DB.wmu) before the corresponding storage write and pruned at each publish
// up to the oldest pinned epoch, so sequential runs keep it empty.
type verTable struct {
	n    atomic.Int64 // live entries; lock-free empty check for readers
	mu   sync.RWMutex
	m    map[storage.OID][]verEntry
	fifo []storage.OID // one element per saved entry, in epoch order
}

// save records pre as oid's value before the write at epoch. Repeated saves
// for the same (oid, epoch) keep the first — that is the value readers
// below epoch must see.
func (t *verTable) save(oid storage.OID, epoch uint64, pre any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[storage.OID][]verEntry)
	}
	chain := t.m[oid]
	if k := len(chain); k > 0 && chain[k-1].epoch >= epoch {
		return
	}
	t.m[oid] = append(chain, verEntry{epoch: epoch, pre: pre})
	t.fifo = append(t.fifo, oid)
	t.n.Add(1)
}

// lookup returns the value oid had at reader epoch e: the pre-image of the
// oldest overwrite published after e. ok=false means the current version is
// the right one.
func (t *verTable) lookup(oid storage.OID, e uint64) (any, bool) {
	if t.n.Load() == 0 {
		return nil, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, ent := range t.m[oid] {
		if ent.epoch > e {
			return ent.pre, true
		}
	}
	return nil, false
}

// prune drops every entry with epoch <= min: no active reader (all pinned
// at >= min) or future reader (they will pin the current epoch) can need
// it. fifo is in epoch order, so pruning pops a prefix.
func (t *verTable) prune(min uint64) {
	if t.n.Load() == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i := 0
	for ; i < len(t.fifo); i++ {
		oid := t.fifo[i]
		chain := t.m[oid]
		if chain[0].epoch > min {
			break
		}
		if len(chain) == 1 {
			delete(t.m, oid)
		} else {
			t.m[oid] = chain[1:]
		}
	}
	if i > 0 {
		t.fifo = append(t.fifo[:0], t.fifo[i:]...)
		t.n.Add(int64(-i))
	}
}

// --- reader slots ------------------------------------------------------------

// readerSlots registers the epochs active snapshots are pinned to, so the
// writer can bound version-table pruning. The fast path is one CAS into a
// fixed slot array; the overflow map only engages past 64 concurrent
// snapshots. A slot holds epoch+1 (0 = free).
type readerSlots struct {
	slots    [64]atomic.Uint64
	mu       sync.Mutex
	overflow map[uint64]int // epoch -> pin count
}

// pin registers a reader at epoch and returns its slot (-1 = overflow).
func (r *readerSlots) pin(epoch uint64) int {
	v := epoch + 1
	for i := range r.slots {
		if r.slots[i].CompareAndSwap(0, v) {
			return i
		}
	}
	r.mu.Lock()
	if r.overflow == nil {
		r.overflow = make(map[uint64]int)
	}
	r.overflow[epoch]++
	r.mu.Unlock()
	return -1
}

// unpin releases a pin taken at epoch.
func (r *readerSlots) unpin(slot int, epoch uint64) {
	if slot >= 0 {
		r.slots[slot].Store(0)
		return
	}
	r.mu.Lock()
	if r.overflow[epoch]--; r.overflow[epoch] <= 0 {
		delete(r.overflow, epoch)
	}
	r.mu.Unlock()
}

// minPinned returns the oldest pinned epoch, or cur when nothing is pinned.
func (r *readerSlots) minPinned(cur uint64) uint64 {
	min := cur
	for i := range r.slots {
		if v := r.slots[i].Load(); v != 0 && v-1 < min {
			min = v - 1
		}
	}
	r.mu.Lock()
	for e := range r.overflow {
		if e < min {
			min = e
		}
	}
	r.mu.Unlock()
	return min
}

// --- snapshot handles --------------------------------------------------------

// Snap is a consistent read-only view of the database as of one published
// epoch. All read entry points of DB are available as Snap methods and run
// lock-free against the captured state; the handle must be released with
// Close once the caller is done, so the writer can reclaim pre-images.
//
// A Snap with st == nil is the writer's live view (used internally under
// DB.wmu, and by DB's own read entry points through acquire): it reads the
// working state directly and skips version-table corrections.
type Snap struct {
	db     *DB
	st     *dbState
	slot   int
	closed bool
}

// acquire captures the current snapshot and pins its epoch. The validation
// loop re-reads the state pointer after pinning: if a writer published in
// between, its prune scan may have missed the pin, so retry against the
// fresh state (epochs only grow, so this terminates as soon as a load and
// a pin land between two publishes).
func (db *DB) acquire() *Snap {
	for {
		st := db.state.Load()
		slot := db.readers.pin(st.epoch)
		if db.state.Load() == st {
			return &Snap{db: db, st: st, slot: slot}
		}
		db.readers.unpin(slot, st.epoch)
	}
}

// liveSnap is the writer's uncorrected view over its own working state.
func (db *DB) liveSnap() *Snap { return &Snap{db: db} }

// Snapshot captures a consistent read view of the database. The returned
// snapshot sees exactly the state as of the most recent completed write
// and is unaffected by later writes. It must be Closed.
func (db *DB) Snapshot() (Snapshot, error) { return db.acquire(), nil }

// Close releases the snapshot's epoch pin. Idempotent.
func (s *Snap) Close() error {
	if s.st != nil && !s.closed {
		s.closed = true
		s.db.readers.unpin(s.slot, s.st.epoch)
	}
	return nil
}

// Epoch reports the publish epoch this snapshot captured (0 for the
// writer's live view).
func (s *Snap) Epoch() uint64 {
	if s.st == nil {
		return 0
	}
	return s.st.epoch
}

// catView, cntView and the root accessors route reads to the captured
// state, or to the writer's working state on the live view.
func (s *Snap) catView() *catalog {
	if s.st != nil {
		return s.st.cat
	}
	return s.db.cat
}

func (s *Snap) cntView() *counters {
	if s.st != nil {
		return s.st.cnt
	}
	return &s.db.cnt
}

func (s *Snap) stateRootsView() []*treapNode[uint64, struct{}] {
	if s.st != nil {
		return s.st.stateRoots
	}
	return s.db.stateRoots
}

func (s *Snap) nameRootView() *treapNode[string, storage.OID] {
	if s.st != nil {
		return s.st.nameRoot
	}
	return s.db.nameRoot
}

func (s *Snap) invRootView() *treapNode[uint64, *invList] {
	if s.st != nil {
		return s.st.invRoot
	}
	return s.db.invRoot
}

// snapEpoch is the epoch used for version-table corrections; the live view
// uses MaxUint64 so every lookup misses (the writer wants latest state).
func (s *Snap) snapEpoch() uint64 {
	if s.st == nil {
		return ^uint64(0)
	}
	return s.st.epoch
}

// readMaterial returns the material record as of the snapshot: the current
// record (cache or storage, both return copies), corrected by the version
// table. Reading current-then-correcting is what makes the lock-free race
// benign — the pre-image is saved before any overwrite, so post-image
// bytes imply a visible version entry.
func (s *Snap) readMaterial(oid storage.OID) (*materialRec, error) {
	m, err := s.db.readMaterial(oid)
	if s.st == nil {
		return m, err
	}
	if pre, ok := s.db.vers.lookup(oid, s.st.epoch); ok {
		if pre == nil {
			return nil, fmt.Errorf("labbase: material %v: %w", oid, storage.ErrNoSuchObject)
		}
		mc := *(pre.(*materialRec))
		return &mc, nil
	}
	return m, err
}

// readMR returns the most-recent index bytes as of the snapshot. The
// returned slice must not be mutated (it may be the cached copy or a
// shared pre-image).
func (s *Snap) readMR(mrOID storage.OID) ([]byte, error) {
	data, err := s.db.mrCache.getOrFill(mrOID, func() ([]byte, error) {
		data, err := s.db.sm.Read(mrOID)
		if err != nil {
			return nil, fmt.Errorf("labbase: read most-recent index: %w", err)
		}
		if err := checkMRIndex(data); err != nil {
			return nil, err
		}
		return data, nil
	})
	if s.st == nil {
		return data, err
	}
	if pre, ok := s.db.vers.lookup(mrOID, s.st.epoch); ok {
		return pre.([]byte), nil
	}
	return data, err
}

// scanExtentN walks an extent chain from the snapshot's head, visiting
// exactly the first total entries in insertion order. Non-head chunks are
// full by construction; only the head can have grown past the capture
// point, so total bounds how much of it is visible.
func (s *Snap) scanExtentN(head storage.OID, total uint64, fn func(storage.OID) error) error {
	if head.IsNil() {
		return nil
	}
	var chunks [][]byte
	for oid := head; !oid.IsNil(); {
		data, err := s.db.sm.Read(oid)
		if err != nil {
			return fmt.Errorf("labbase: read extent chunk: %w", err)
		}
		if err := checkExtentChunk(data); err != nil {
			return err
		}
		chunks = append(chunks, data)
		oid = extentNext(data)
	}
	validHead := int(total) - (len(chunks)-1)*extentChunkCap
	if validHead < 0 || validHead > extentCount(chunks[0]) {
		return fmt.Errorf("labbase: extent chain disagrees with snapshot count %d", total)
	}
	for i := len(chunks) - 1; i >= 0; i-- {
		data := chunks[i]
		n := extentCount(data)
		if i == 0 {
			n = validHead
		}
		for j := 0; j < n; j++ {
			if err := fn(extentGet(data, j)); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- publication (writer side) -----------------------------------------------

// markCat notes that the current write op touched the catalog: it must be
// rewritten at commit and cloned into the next published snapshot.
func (db *DB) markCat() {
	db.cat.dirty = true
	db.catTouched = true
	db.dirtySincePublish = true
}

// markCnt is markCat's counterpart for the counters record.
func (db *DB) markCnt() {
	db.cntDirty = true
	db.cntTouched = true
	db.dirtySincePublish = true
}

// publish installs a new immutable snapshot of the working state and prunes
// the version table up to the oldest epoch still pinned. Caller holds wmu.
// Structural sharing keeps this cheap: the catalog and counters are cloned
// only when the ops since the last publish touched them, and the treap
// roots are pointer copies.
func (db *DB) publish() {
	if db.catTouched || db.snapCat == nil {
		db.snapCat = db.cat.clone()
		db.catTouched = false
	}
	if db.cntTouched || db.snapCnt == nil {
		c := db.cnt.clone()
		db.snapCnt = &c
		db.cntTouched = false
	}
	st := &dbState{
		epoch:      db.wEpoch,
		cat:        db.snapCat,
		cnt:        db.snapCnt,
		stateRoots: append([]*treapNode[uint64, struct{}](nil), db.stateRoots...),
		nameRoot:   db.nameRoot,
		invRoot:    db.invRoot,
	}
	db.state.Store(st)
	db.wEpoch++
	db.dirtySincePublish = false
	db.vers.prune(db.readers.minPinned(st.epoch))
}

// publishIfDirty publishes when any mutation happened since the last
// publish. Write entry points call it on every exit, so failed ops that
// mutated partially still become visible at a consistent op boundary (the
// same partial state the locked implementation exposed), while validation
// failures publish nothing and burn no epoch.
func (db *DB) publishIfDirty() {
	if db.dirtySincePublish {
		db.publish()
	}
}
