package labbase

import (
	"sync"

	"labflow/internal/storage"
)

// oidCache is a small bounded LRU keyed by OID, used to keep decoded hot
// records (materials, most-recent indexes) in memory so the tracking and
// query inner loops stop re-reading and re-decoding the same bytes.
//
// Eviction is strict LRU over an intrusive doubly-linked list — fully
// deterministic under sequential use. That matters: cache hits skip
// storage-manager reads and therefore change the simulated fault counters,
// so a nondeterministic eviction policy (e.g. map-iteration order) would
// make benchmark runs irreproducible across processes. Under concurrent
// readers the recency order depends on goroutine interleaving, which is why
// byte-identical benchmark runs use the sequential path.
//
// The cache is safe for concurrent use: every operation holds c.mu, and a
// miss routed through getOrFill is single-flight — the first goroutine to
// miss on an OID performs the storage read while any concurrent readers of
// the same OID wait for that one fill instead of stampeding the storage
// manager. c.mu is a leaf lock in the DB lock hierarchy (see DESIGN.md): it
// is never held across a storage-manager call or while taking DB.wmu.
//
// A nil *oidCache is a valid, permanently-empty cache (caching disabled).
type oidCache[V any] struct {
	mu       sync.Mutex
	capacity int
	m        map[storage.OID]*cacheNode[V]
	head     *cacheNode[V] // most recently used
	tail     *cacheNode[V] // least recently used
	fills    map[storage.OID]*cacheFill[V]
	// gen counts writer-driven updates (put/invalidate). A fill that started
	// before such an update must not install its possibly-stale bytes over
	// the writer's refresh, so getOrFill only installs when gen is unchanged
	// since the fill registered. Sequential use never skips an install: gen
	// cannot move while a single goroutine is inside getOrFill.
	gen uint64
}

type cacheNode[V any] struct {
	key        storage.OID
	val        V
	prev, next *cacheNode[V]
}

// cacheFill tracks one in-flight load so concurrent misses on the same OID
// share a single storage read. done is closed once val/err are final.
type cacheFill[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// newOIDCache returns a cache bounded to capacity entries, or nil (disabled)
// when capacity <= 0.
func newOIDCache[V any](capacity int) *oidCache[V] {
	if capacity <= 0 {
		return nil
	}
	return &oidCache[V]{
		capacity: capacity,
		m:        make(map[storage.OID]*cacheNode[V], capacity),
		fills:    make(map[storage.OID]*cacheFill[V]),
	}
}

// get returns the cached value and marks it most recently used.
func (c *oidCache[V]) get(oid storage.OID) (V, bool) {
	if c == nil {
		var zero V
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.m[oid]
	if !ok {
		var zero V
		return zero, false
	}
	c.moveToFront(n)
	return n.val, true
}

// getOrFill returns the cached value, loading it through load on a miss.
// Concurrent misses on the same OID share one load (single-flight): the
// first goroutine runs load without holding c.mu, the rest block until it
// finishes and share its result. Load errors are not cached — each fresh
// miss after a failure retries.
func (c *oidCache[V]) getOrFill(oid storage.OID, load func() (V, error)) (V, error) {
	if c == nil {
		return load()
	}
	c.mu.Lock()
	if n, ok := c.m[oid]; ok {
		c.moveToFront(n)
		v := n.val
		c.mu.Unlock()
		return v, nil
	}
	if f, ok := c.fills[oid]; ok {
		c.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &cacheFill[V]{done: make(chan struct{})}
	c.fills[oid] = f
	genAtFill := c.gen
	c.mu.Unlock()

	f.val, f.err = load()

	c.mu.Lock()
	delete(c.fills, oid)
	if f.err == nil && c.gen == genAtFill {
		c.putLocked(oid, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, f.err
}

// put inserts or refreshes an entry, evicting the least recently used entry
// when the cache is full.
func (c *oidCache[V]) put(oid storage.OID, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.putLocked(oid, v)
}

func (c *oidCache[V]) putLocked(oid storage.OID, v V) {
	if n, ok := c.m[oid]; ok {
		n.val = v
		c.moveToFront(n)
		return
	}
	if len(c.m) >= c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
	}
	n := &cacheNode[V]{key: oid, val: v}
	c.m[oid] = n
	c.pushFront(n)
}

// invalidate drops an entry (no-op when absent). Every write to a cached
// record must invalidate or refresh its entry — see DESIGN.md's cache
// invalidation rules.
func (c *oidCache[V]) invalidate(oid storage.OID) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	if n, ok := c.m[oid]; ok {
		c.unlink(n)
		delete(c.m, oid)
	}
}

// len reports the current number of cached entries.
func (c *oidCache[V]) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func (c *oidCache[V]) pushFront(n *cacheNode[V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *oidCache[V]) unlink(n *cacheNode[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *oidCache[V]) moveToFront(n *cacheNode[V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
