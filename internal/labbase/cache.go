package labbase

import "labflow/internal/storage"

// oidCache is a small bounded LRU keyed by OID, used to keep decoded hot
// records (materials, most-recent indexes) in memory so the tracking and
// query inner loops stop re-reading and re-decoding the same bytes.
//
// Eviction is strict LRU over an intrusive doubly-linked list — fully
// deterministic. That matters: cache hits skip storage-manager reads and
// therefore change the simulated fault counters, so a nondeterministic
// eviction policy (e.g. map-iteration order) would make benchmark runs
// irreproducible across processes.
//
// A nil *oidCache is a valid, permanently-empty cache (caching disabled).
type oidCache[V any] struct {
	capacity int
	m        map[storage.OID]*cacheNode[V]
	head     *cacheNode[V] // most recently used
	tail     *cacheNode[V] // least recently used
}

type cacheNode[V any] struct {
	key        storage.OID
	val        V
	prev, next *cacheNode[V]
}

// newOIDCache returns a cache bounded to capacity entries, or nil (disabled)
// when capacity <= 0.
func newOIDCache[V any](capacity int) *oidCache[V] {
	if capacity <= 0 {
		return nil
	}
	return &oidCache[V]{
		capacity: capacity,
		m:        make(map[storage.OID]*cacheNode[V], capacity),
	}
}

// get returns the cached value and marks it most recently used.
func (c *oidCache[V]) get(oid storage.OID) (V, bool) {
	if c == nil {
		var zero V
		return zero, false
	}
	n, ok := c.m[oid]
	if !ok {
		var zero V
		return zero, false
	}
	c.moveToFront(n)
	return n.val, true
}

// put inserts or refreshes an entry, evicting the least recently used entry
// when the cache is full.
func (c *oidCache[V]) put(oid storage.OID, v V) {
	if c == nil {
		return
	}
	if n, ok := c.m[oid]; ok {
		n.val = v
		c.moveToFront(n)
		return
	}
	if len(c.m) >= c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
	}
	n := &cacheNode[V]{key: oid, val: v}
	c.m[oid] = n
	c.pushFront(n)
}

// invalidate drops an entry (no-op when absent). Every write to a cached
// record must invalidate or refresh its entry — see DESIGN.md's cache
// invalidation rules.
func (c *oidCache[V]) invalidate(oid storage.OID) {
	if c == nil {
		return
	}
	if n, ok := c.m[oid]; ok {
		c.unlink(n)
		delete(c.m, oid)
	}
}

// len reports the current number of cached entries.
func (c *oidCache[V]) len() int {
	if c == nil {
		return 0
	}
	return len(c.m)
}

func (c *oidCache[V]) pushFront(n *cacheNode[V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *oidCache[V]) unlink(n *cacheNode[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *oidCache[V]) moveToFront(n *cacheNode[V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
