package labbase

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"labflow/internal/storage"
	"labflow/internal/storage/memstore"
)

// loadReadSet creates mats materials, each with steps recorded steps, and
// returns their OIDs. Used by the concurrency tests and read benchmarks.
func loadReadSet(tb testing.TB, db *DB, mats, steps int) []storage.OID {
	tb.Helper()
	if err := db.Begin(); err != nil {
		tb.Fatal(err)
	}
	if _, err := db.DefineMaterialClass("sample", ""); err != nil {
		tb.Fatal(err)
	}
	if _, err := db.DefineState("new"); err != nil {
		tb.Fatal(err)
	}
	if _, _, err := db.DefineStepClass("measure", []AttrDef{{Name: "reading", Kind: KindInt}}); err != nil {
		tb.Fatal(err)
	}
	oids := make([]storage.OID, mats)
	for i := range oids {
		oid, err := db.CreateMaterial("sample", fmt.Sprintf("m%d", i), "new", int64(i))
		if err != nil {
			tb.Fatal(err)
		}
		oids[i] = oid
		for j := 0; j < steps; j++ {
			if _, err := db.RecordStep(StepSpec{
				Class: "measure", ValidTime: int64(100*i + j),
				Materials: []storage.OID{oid},
				Attrs:     []AttrValue{{Name: "reading", Value: Int64(int64(1000*i + j))}},
			}); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if err := db.Commit(); err != nil {
		tb.Fatal(err)
	}
	return oids
}

// TestConcurrentReaders runs every read-only entry point from many
// goroutines at once (run under -race). Values are asserted, not just
// fetched: concurrent reads must agree with what was loaded.
func TestConcurrentReaders(t *testing.T) {
	db := openMem(t)
	oids := loadReadSet(t, db, 16, 4)

	const readers = 8
	const rounds = 120
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < rounds; i++ {
				idx := rng.Intn(len(oids))
				oid := oids[idx]
				v, _, found, err := db.MostRecent(oid, "reading")
				if err != nil || !found || v.Int != int64(1000*idx+3) {
					errs <- fmt.Errorf("reader %d: MostRecent(%d) = %v %v: %w", r, idx, v, found, err)
					return
				}
				hist, err := db.History(oid)
				if err != nil || len(hist) != 4 {
					errs <- fmt.Errorf("reader %d: History(%d) = %d entries: %w", r, idx, len(hist), err)
					return
				}
				m, err := db.GetMaterial(oid)
				if err != nil || m.Name != fmt.Sprintf("m%d", idx) {
					errs <- fmt.Errorf("reader %d: GetMaterial(%d) = %+v: %w", r, idx, m, err)
					return
				}
				if st, err := db.State(oid); err != nil || st != "new" {
					errs <- fmt.Errorf("reader %d: State(%d) = %q: %w", r, idx, st, err)
					return
				}
				if _, err := db.AttrTimeline(oid, "reading"); err != nil {
					errs <- fmt.Errorf("reader %d: AttrTimeline: %w", r, err)
					return
				}
				if n, err := db.CountMaterials("sample"); err != nil || n != uint64(len(oids)) {
					errs <- fmt.Errorf("reader %d: CountMaterials = %d: %w", r, n, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentReadersWithWriter interleaves one writer (the supported
// single-writer regime) with racing readers: readers must always observe a
// complete, valid state — either before or after each step, never torn.
func TestConcurrentReadersWithWriter(t *testing.T) {
	db := openMem(t)
	oids := loadReadSet(t, db, 8, 2)

	const readers = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := rng.Intn(len(oids))
				v, _, found, err := db.MostRecent(oids[idx], "reading")
				if err != nil || !found {
					errs <- fmt.Errorf("reader %d: MostRecent = %v %v: %w", r, v, found, err)
					return
				}
				if _, err := db.History(oids[idx]); err != nil {
					errs <- fmt.Errorf("reader %d: History: %w", r, err)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 200; i++ {
			if err := db.Begin(); err != nil {
				errs <- err
				return
			}
			if _, err := db.RecordStep(StepSpec{
				Class: "measure", ValidTime: int64(10000 + i),
				Materials: []storage.OID{oids[i%len(oids)]},
				Attrs:     []AttrValue{{Name: "reading", Value: Int64(int64(i))}},
			}); err != nil {
				errs <- err
				return
			}
			if err := db.Commit(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSingleFlightCacheStress points every reader at ONE material so all
// cache misses collide on the same OID: the single-flight fill must hand
// every waiter the same result with no duplicate loads racing (run under
// -race, which would catch a torn fill).
func TestSingleFlightCacheStress(t *testing.T) {
	db := openMem(t)
	oids := loadReadSet(t, db, 1, 8)

	mr := mustMR(t, db, oids[0])
	for round := 0; round < 20; round++ {
		// Empty both caches so every round re-fills from a cold start.
		db.matCache.invalidate(oids[0])
		db.mrCache.invalidate(mr)
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for r := 0; r < 16; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, _, found, err := db.MostRecent(oids[0], "reading")
				if err != nil || !found || v.Int != 7 {
					errs <- fmt.Errorf("MostRecent = %v %v: %w", v, found, err)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

// mustMR returns the material's most-recent index OID (test-only peek).
func mustMR(t *testing.T, db *DB, oid storage.OID) storage.OID {
	t.Helper()
	m, err := db.readMaterial(oid)
	if err != nil {
		t.Fatal(err)
	}
	return m.mrIndex
}

// benchReaders measures MostRecent with exactly n concurrent readers over a
// shared database, the read-scaling experiment from EXPERIMENTS.md. On a
// single-core host the in-process numbers stay flat (the lock was never the
// bottleneck — the CPU is); the wire-level scaling shows up in lfload.
func benchReaders(b *testing.B, n int) {
	db, err := Open(memstore.Open("bench-mm"), DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	oids := loadReadSet(b, db, 256, 4)

	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / n
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < per; i++ {
				oid := oids[rng.Intn(len(oids))]
				if _, _, _, err := db.MostRecent(oid, "reading"); err != nil {
					b.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func BenchmarkMostRecentReaders1(b *testing.B)  { benchReaders(b, 1) }
func BenchmarkMostRecentReaders4(b *testing.B)  { benchReaders(b, 4) }
func BenchmarkMostRecentReaders16(b *testing.B) { benchReaders(b, 16) }
