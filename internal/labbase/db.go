// Package labbase implements the workflow wrapper DBMS of the LabFlow-1
// paper's Architecture (C): a specialized layer that provides event
// histories, most-recent-value access structures, workflow states, material
// sets, and dynamic schema evolution on top of an object storage manager
// that supports none of those directly.
//
// The storage schema is the paper's Table 1 — exactly three storage classes:
//
//	sm_step      one record per workflow event, immutable once written
//	sm_material  one record per lab material, holding its state and the
//	             involves pointer to its history list
//	material_set write-once sets of materials for batched steps
//
// plus the access structures (history chunks, most-recent indexes, class
// extents, counters) that LabBase keeps "for rapid access into history
// lists". Records are placed across the four storage segments defined in
// package storage: catalog, material and index (small, hot) and history
// (large, cold).
//
// Schema evolution follows the paper exactly: a step class evolves by
// recording steps with a new attribute set; each attribute set is a version;
// instances stay bound to their creating version forever, so schema changes
// never reorganize old data.
package labbase

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"labflow/internal/rec"
	"labflow/internal/storage"
)

// Errors returned by the database layer.
var (
	ErrUnknownClass  = errors.New("labbase: unknown class")
	ErrUnknownAttr   = errors.New("labbase: unknown attribute")
	ErrUnknownState  = errors.New("labbase: unknown state")
	ErrKindMismatch  = errors.New("labbase: value kind does not match attribute")
	ErrNotMaterial   = errors.New("labbase: object is not a material")
	ErrNoSuchVersion = errors.New("labbase: no step-class version matches the attribute set")
	ErrNoTransaction = errors.New("labbase: no transaction in progress")
	ErrDuplicateName = errors.New("labbase: material name already in use")
)

// Options tunes an open database.
type Options struct {
	// ImplicitVersions lets RecordStep create a new step-class version when
	// it sees an unknown attribute set (the paper's evolution-by-use).
	// Default true.
	ImplicitVersions bool
	// ImplicitAttrs lets RecordStep define unknown attributes on the fly
	// (with KindAny). Default true.
	ImplicitAttrs bool
	// CacheEntries bounds the in-memory caches of decoded hot records
	// (material records and most-recent indexes, CacheEntries entries each).
	// Cached reads skip the storage manager entirely, so they also skip its
	// simulated fault accounting — the cache is deterministic (strict LRU)
	// precisely so benchmark runs stay reproducible. 0 disables caching;
	// DefaultOptions enables DefaultCacheEntries.
	CacheEntries int
}

// DefaultCacheEntries is the decode-cache bound used by DefaultOptions.
const DefaultCacheEntries = 1024

// DefaultOptions returns the defaults described on Options.
func DefaultOptions() Options {
	return Options{ImplicitVersions: true, ImplicitAttrs: true, CacheEntries: DefaultCacheEntries}
}

// DB is a LabBase database over a storage manager. Mutating calls must be
// bracketed by Begin/Commit; reads may run at any time.
//
// Concurrency contract: a DB is safe for concurrent use with single-writer,
// snapshot-reader semantics. Read entry points take no lock at all: each
// captures the current published snapshot (one atomic load plus an epoch
// pin, see snapshot.go) and runs against it for the duration of the call,
// so readers never wait on writers or on each other. Snapshot() exposes the
// same mechanism to callers that want one consistent view across several
// reads. Mutations (Begin, Commit, the Define* calls, CreateMaterial,
// CreateMaterialSet, RecordStep, SetState, Close) serialize on the writer
// mutex wmu and publish a new snapshot before returning. Callers running
// several write transactions concurrently must additionally serialize their
// Begin/Commit brackets (the wire server's write lock does this); wmu alone
// only makes the individual calls atomic. The decode caches and the version
// table are internally synchronized leaf locks below wmu — see DESIGN.md
// §10 for the full hierarchy. Close must not run concurrently with reads:
// it releases the storage manager, which active snapshots still read
// through (the wire server drains its connections first).
type DB struct {
	// wmu serializes mutations among themselves. Readers never touch it:
	// the published-snapshot pointer below is their only rendezvous with
	// the writer.
	wmu sync.Mutex

	sm   storage.Manager
	cat  *catalog
	cnt  counters
	opts Options

	// Volatile access structures, rebuilt at open. Persistent treaps so a
	// published snapshot shares all but the most recently touched paths
	// with the writer's working copy (see treap.go).
	stateRoots []*treapNode[uint64, struct{}]  // index = StateID-1; key = material OID
	nameRoot   *treapNode[string, storage.OID] // material name -> OID
	invRoot    *treapNode[uint64, *invList]    // material OID -> involving steps

	// Decode caches for the hot read paths (see Options.CacheEntries). Both
	// are invalidated or refreshed on every write to the records they mirror.
	// Each is internally synchronized and fills are single-flight, so
	// concurrent readers missing on the same OID share one storage read.
	matCache *oidCache[materialRec]
	mrCache  *oidCache[[]byte]

	inTxn    atomic.Bool
	cntDirty bool
	seq      int64  // logical transaction-time counter
	cntBuf   []byte // scratch buffer for counter encodes, reused per commit

	// MVCC publication state (snapshot.go). state is the atomically-swapped
	// pointer readers capture; vers holds pre-images for readers pinned to
	// older epochs; readers tracks those pins so publish can prune.
	state   atomic.Pointer[dbState]
	vers    verTable
	readers readerSlots
	// wEpoch is the epoch the next publish will carry (published epoch + 1).
	wEpoch uint64
	// snapCat/snapCnt are the catalog and counters clones in the currently
	// published snapshot; publish reuses them while no op has touched the
	// working copies since (catTouched/cntTouched).
	snapCat           *catalog
	snapCnt           *counters
	catTouched        bool
	cntTouched        bool
	dirtySincePublish bool
}

// Open opens the LabBase database stored in sm, formatting a fresh one if
// the store has no root.
func Open(sm storage.Manager, opts Options) (*DB, error) {
	db := &DB{
		sm:       sm,
		opts:     opts,
		matCache: newOIDCache[materialRec](opts.CacheEntries),
		mrCache:  newOIDCache[[]byte](opts.CacheEntries),
	}
	root, err := sm.Root()
	if err != nil {
		return nil, err
	}
	if root.IsNil() {
		if err := db.format(); err != nil {
			return nil, err
		}
		db.wEpoch = 1
		db.publish()
		return db, nil
	}
	data, err := sm.Read(root)
	if err != nil {
		return nil, fmt.Errorf("labbase: read catalog: %w", err)
	}
	db.cat, err = decodeCatalog(data)
	if err != nil {
		return nil, err
	}
	cdata, err := sm.Read(db.cat.countersOID)
	if err != nil {
		return nil, fmt.Errorf("labbase: read counters: %w", err)
	}
	db.cnt, err = decodeCounters(cdata)
	if err != nil {
		return nil, err
	}
	if err := db.rebuildStateIndex(); err != nil {
		return nil, err
	}
	db.seq = int64(db.cnt.totalSteps() + db.cnt.totalMaterials())
	db.wEpoch = 1
	db.publish()
	return db, nil
}

func (db *DB) format() error {
	db.cat = newCatalog()
	if err := db.sm.Begin(); err != nil {
		return err
	}
	coid, err := db.sm.Allocate(storage.SegIndex, db.cnt.encode())
	if err != nil {
		return fmt.Errorf("labbase: format counters: %w", err)
	}
	db.cat.countersOID = coid
	root, err := db.sm.Allocate(storage.SegCatalog, db.cat.encode())
	if err != nil {
		return fmt.Errorf("labbase: format catalog: %w", err)
	}
	if err := db.sm.SetRoot(root); err != nil {
		return err
	}
	return db.sm.Commit()
}

// rebuildStateIndex reconstructs the in-memory access structures — the
// state sets, the name index and the reverse involves index. LabBase keeps
// its volatile access structures in memory and rebuilds them at server
// start.
func (db *DB) rebuildStateIndex() error {
	db.stateRoots = make([]*treapNode[uint64, struct{}], len(db.cat.states))
	for _, mc := range db.cat.materialClasses {
		err := db.scanExtent(mc.extentHead, func(oid storage.OID) error {
			m, err := db.readMaterial(oid)
			if err != nil {
				return err
			}
			if m.stateID != 0 {
				db.stateIdxAdd(m.stateID, oid)
			}
			if m.name != "" {
				db.nameRoot = treapPut(db.nameRoot, m.name, namePri(m.name), oid)
			}
			return db.rebuildInvolves(oid, m)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// rebuildInvolves replays a material's history chain into the reverse
// involves index (material -> steps that processed it).
func (db *DB) rebuildInvolves(oid storage.OID, m *materialRec) error {
	if m.historyHead.IsNil() {
		return nil
	}
	hist, err := db.historyFrom(m.historyHead, m.historyCount)
	if err != nil {
		return err
	}
	var l *invList
	for i, h := range hist {
		l = &invList{step: h.Step, next: l, n: i + 1}
	}
	if l != nil {
		db.invRoot = treapPut(db.invRoot, uint64(oid), oidPri(uint64(oid)), l)
	}
	return nil
}

func (db *DB) stateIdxAdd(s StateID, oid storage.OID) {
	for len(db.stateRoots) < int(s) {
		db.stateRoots = append(db.stateRoots, nil)
	}
	db.stateRoots[s-1] = treapPut(db.stateRoots[s-1], uint64(oid), oidPri(uint64(oid)), struct{}{})
}

func (db *DB) stateIdxRemove(s StateID, oid storage.OID) {
	if int(s) <= len(db.stateRoots) {
		db.stateRoots[s-1] = treapDelete(db.stateRoots[s-1], uint64(oid))
	}
}

// Begin starts a transaction.
func (db *DB) Begin() error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if err := db.sm.Begin(); err != nil {
		return err
	}
	db.inTxn.Store(true)
	return nil
}

// Commit writes back the catalog and counters if they changed and commits
// the storage transaction.
func (db *DB) Commit() error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if !db.inTxn.Load() {
		return ErrNoTransaction
	}
	if db.cat.dirty {
		root, err := db.sm.Root()
		if err != nil {
			return err
		}
		e := rec.GetEncoder()
		db.cat.encodeTo(e)
		err = db.sm.Write(root, e.Bytes())
		rec.PutEncoder(e)
		if err != nil {
			return fmt.Errorf("labbase: write catalog: %w", err)
		}
		db.cat.dirty = false
	}
	if db.cntDirty {
		// The counter record is rewritten on almost every transaction; encode
		// it into a scratch buffer the DB owns (the manager copies the bytes).
		db.cntBuf = db.cnt.appendTo(db.cntBuf[:0])
		if err := db.sm.Write(db.cat.countersOID, db.cntBuf); err != nil {
			return fmt.Errorf("labbase: write counters: %w", err)
		}
		db.cntDirty = false
	}
	db.inTxn.Store(false)
	// Backstop publish: ops normally publish themselves on exit, but an op
	// that failed partway may have left unpublished mutations behind.
	db.publishIfDirty()
	return db.sm.Commit()
}

func (db *DB) requireTxn() error {
	if !db.inTxn.Load() {
		return ErrNoTransaction
	}
	return nil
}

// InTxn reports whether a transaction is open.
func (db *DB) InTxn() bool {
	return db.inTxn.Load()
}

// Close closes the database (the storage manager with it).
func (db *DB) Close() error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	return db.sm.Close()
}

// Manager exposes the underlying storage manager (for stats collection).
func (db *DB) Manager() storage.Manager { return db.sm }

// nextTxnTime issues the logical transaction timestamp for a new record.
// Valid time, by contrast, is supplied by the caller: the paper is explicit
// that "most recent" is based on valid time, not transaction time.
func (db *DB) nextTxnTime() int64 {
	db.seq++
	return db.seq
}

// --- Schema definition -----------------------------------------------------

// DefineMaterialClass registers a material class under an optional parent
// (is-a link). Re-defining an existing class with the same parent is a
// no-op; with a different parent it is an error.
func (db *DB) DefineMaterialClass(name, parent string) (ClassID, error) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	defer db.publishIfDirty()
	if err := db.requireTxn(); err != nil {
		return 0, err
	}
	if name == "" {
		return 0, fmt.Errorf("labbase: empty material class name")
	}
	var parentID ClassID
	if parent != "" {
		pc, ok := db.cat.byMCName[parent]
		if !ok {
			return 0, fmt.Errorf("%w: parent %q", ErrUnknownClass, parent)
		}
		parentID = pc.ID
	}
	if mc, ok := db.cat.byMCName[name]; ok {
		if mc.Parent != parentID {
			return 0, fmt.Errorf("labbase: class %q already defined with a different parent", name)
		}
		return mc.ID, nil
	}
	mc := &MaterialClass{ID: ClassID(len(db.cat.materialClasses) + 1), Name: name, Parent: parentID}
	db.cat.materialClasses = append(db.cat.materialClasses, mc)
	db.cat.byMCName[name] = mc
	db.markCat()
	db.cnt.growTo(len(db.cat.materialClasses), len(db.cat.stepClasses), len(db.cat.states))
	db.markCnt()
	return mc.ID, nil
}

// DefineAttr registers an attribute. Redefinition with a conflicting kind is
// an error; with the same kind it is a no-op.
func (db *DB) DefineAttr(name string, kind Kind) (AttrID, error) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	defer db.publishIfDirty()
	if err := db.requireTxn(); err != nil {
		return 0, err
	}
	return db.defineAttrLocked(name, kind)
}

func (db *DB) defineAttrLocked(name string, kind Kind) (AttrID, error) {
	if name == "" {
		return 0, fmt.Errorf("labbase: empty attribute name")
	}
	if id, ok := db.cat.byAttrName[name]; ok {
		existing := db.cat.attrs[id-1]
		if existing.Kind != kind && kind != KindAny && existing.Kind != KindAny {
			return 0, fmt.Errorf("%w: attribute %q is %v, redefined as %v", ErrKindMismatch, name, existing.Kind, kind)
		}
		return id, nil
	}
	db.cat.attrs = append(db.cat.attrs, AttrDef{Name: name, Kind: kind})
	id := AttrID(len(db.cat.attrs))
	db.cat.byAttrName[name] = id
	db.markCat()
	return id, nil
}

// DefineStepClass registers a step class version for the given attribute
// set, creating the class and any unknown attributes as needed. It returns
// the class and the version matching the attribute set — an existing version
// if one matches, a fresh one otherwise. This is the paper's schema
// evolution: "as a step evolves, new versions of the step are created" and
// "each step object is associated forever with the same version".
func (db *DB) DefineStepClass(name string, attrs []AttrDef) (StepClassID, Version, error) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	defer db.publishIfDirty()
	if err := db.requireTxn(); err != nil {
		return 0, 0, err
	}
	if name == "" {
		return 0, 0, fmt.Errorf("labbase: empty step class name")
	}
	ids := make([]AttrID, 0, len(attrs))
	for _, a := range attrs {
		id, err := db.defineAttrLocked(a.Name, a.Kind)
		if err != nil {
			return 0, 0, err
		}
		ids = append(ids, id)
	}
	sc, ok := db.cat.bySCName[name]
	if !ok {
		sc = &StepClass{
			ID:        StepClassID(len(db.cat.stepClasses) + 1),
			Name:      name,
			byAttrKey: make(map[string]Version),
		}
		db.cat.stepClasses = append(db.cat.stepClasses, sc)
		db.cat.bySCName[name] = sc
		db.markCat()
		db.cnt.growTo(len(db.cat.materialClasses), len(db.cat.stepClasses), len(db.cat.states))
		db.markCnt()
	}
	ver, err := db.stepVersionLocked(sc, ids)
	if err != nil {
		return 0, 0, err
	}
	return sc.ID, ver, nil
}

func (db *DB) stepVersionLocked(sc *StepClass, ids []AttrID) (Version, error) {
	key := attrKey(ids)
	if v, ok := sc.byAttrKey[key]; ok {
		return v, nil
	}
	sorted := make([]AttrID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	v := Version(len(sc.Versions) + 1)
	sc.Versions = append(sc.Versions, StepVersion{Ver: v, Attrs: sorted})
	sc.byAttrKey[key] = v
	db.markCat()
	return v, nil
}

// DefineState registers a workflow state name.
func (db *DB) DefineState(name string) (StateID, error) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	defer db.publishIfDirty()
	if err := db.requireTxn(); err != nil {
		return 0, err
	}
	if name == "" {
		return 0, fmt.Errorf("labbase: empty state name")
	}
	if id, ok := db.cat.byState[name]; ok {
		return id, nil
	}
	db.cat.states = append(db.cat.states, name)
	id := StateID(len(db.cat.states))
	db.cat.byState[name] = id
	db.stateRoots = append(db.stateRoots, nil)
	db.markCat()
	db.cnt.growTo(len(db.cat.materialClasses), len(db.cat.stepClasses), len(db.cat.states))
	db.markCnt()
	return id, nil
}

// MaterialClasses returns the defined material class names in definition
// order.
func (db *DB) MaterialClasses() []string {
	s := db.acquire()
	defer s.Close()
	return s.MaterialClasses()
}

// MaterialClasses returns the class names as of the snapshot.
func (s *Snap) MaterialClasses() []string {
	cat := s.catView()
	out := make([]string, len(cat.materialClasses))
	for i, mc := range cat.materialClasses {
		out[i] = mc.Name
	}
	return out
}

// StepClasses returns the defined step class names in definition order.
func (db *DB) StepClasses() []string {
	s := db.acquire()
	defer s.Close()
	return s.StepClasses()
}

// StepClasses returns the step class names as of the snapshot.
func (s *Snap) StepClasses() []string {
	cat := s.catView()
	out := make([]string, len(cat.stepClasses))
	for i, sc := range cat.stepClasses {
		out[i] = sc.Name
	}
	return out
}

// StepClassVersions returns the versions of a step class with attribute
// names resolved.
func (db *DB) StepClassVersions(name string) ([][]string, error) {
	s := db.acquire()
	defer s.Close()
	return s.StepClassVersions(name)
}

// StepClassVersions returns the versions as of the snapshot.
func (s *Snap) StepClassVersions(name string) ([][]string, error) {
	cat := s.catView()
	sc, ok := cat.bySCName[name]
	if !ok {
		return nil, fmt.Errorf("%w: step class %q", ErrUnknownClass, name)
	}
	out := make([][]string, len(sc.Versions))
	for i, v := range sc.Versions {
		names := make([]string, len(v.Attrs))
		for j, a := range v.Attrs {
			def, err := cat.attr(a)
			if err != nil {
				return nil, err
			}
			names[j] = def.Name
		}
		out[i] = names
	}
	return out, nil
}

// States returns the defined state names in definition order.
func (db *DB) States() []string {
	s := db.acquire()
	defer s.Close()
	return s.States()
}

// States returns the state names as of the snapshot.
func (s *Snap) States() []string {
	return append([]string(nil), s.catView().states...)
}
