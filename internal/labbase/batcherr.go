package labbase

import (
	"errors"
	"fmt"
)

// ErrCrossShard is returned when a step or material set references
// materials living on different shards of a partitioned store. Sharded
// LabBase transactions are single-partition (as in d-Chiron): everything
// one step touches — its materials and the members of its Set — must hash
// to the same shard.
//
// The sentinel lives here rather than in labbase/shard so the wire layer
// can map it onto an error code without importing the shard package (which
// itself imports wire for the distributed router); shard re-exports it as
// shard.ErrCrossShard, the name all existing errors.Is call sites use.
var ErrCrossShard = errors.New("shard: materials span shards")

// BatchError reports a PutSteps failure at a specific entry: entries before
// Index were recorded (the batch owns its transaction and commits the
// prefix), entries from Index on were not. It exists as a type, not just a
// formatted string, so the wire layer can carry the failing index across
// the protocol and the distributed router can re-stitch part-local indexes
// back into original batch positions.
type BatchError struct {
	Index int   // position of the failing entry in the batch
	Err   error // the entry's own error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("labbase: step batch entry %d (earlier entries recorded): %v", e.Index, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }
