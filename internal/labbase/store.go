package labbase

import (
	"labflow/internal/storage"
)

// Reader is the read-only LabBase surface. It is implemented both by the
// stores themselves (each read captures a fresh snapshot internally) and by
// the snapshot handles they hand out (every read answers against one fixed
// capture-time state). Code that only consumes data — the deductive
// bridge's externs, report generators — should accept a Reader so it runs
// unchanged over either.
type Reader interface {
	// Schema.
	MaterialClasses() []string
	StepClasses() []string
	StepClassVersions(name string) ([][]string, error)
	States() []string

	// Materials and sets.
	LookupMaterial(name string) (storage.OID, bool)
	GetMaterial(oid storage.OID) (*Material, error)
	State(oid storage.OID) (string, error)
	MaterialsInState(state string) ([]storage.OID, error)
	CountInState(state string) (uint64, error)
	CountMaterials(class string) (uint64, error)
	CountSteps(class string) (uint64, error)
	ScanMaterials(class string, fn func(*Material) error) error
	ScanAllMaterials(fn func(*Material) error) error
	SetMembers(oid storage.OID) ([]storage.OID, error)

	// Steps and history.
	GetStep(oid storage.OID) (*Step, error)
	ScanSteps(class string, fn func(*Step) error) error
	History(oid storage.OID) ([]HistoryEntry, error)
	StepsInvolving(oid storage.OID) ([]storage.OID, error)
	MostRecent(oid storage.OID, attr string) (Value, storage.OID, bool, error)
	MostRecentScan(oid storage.OID, attr string) (Value, storage.OID, bool, error)
	MostRecentAsOf(oid storage.OID, attr string, t int64) (Value, storage.OID, bool, error)
	AttrTimeline(oid storage.OID, attr string) ([]TimelineEntry, error)
	Dump() (DumpStats, error)
}

// Snapshot is one consistent read-only view of a store: every Reader call
// answers as of the same capture time, unaffected by concurrent writes.
// Snapshots are cheap (no copy — an atomic pointer capture plus an epoch
// pin) and must be Closed so the writer can reclaim superseded versions.
type Snapshot interface {
	Reader
	Close() error
}

// Store is the full LabBase surface consumed by the wire server, the
// deductive bridge, and the benchmark drivers. Both *DB (one storage
// manager) and the hash-partitioned *shard.DB (N storage managers behind
// one facade) implement it, so every layer above labbase is shard-agnostic:
// storage.OID stays the public object handle either way.
//
// Implementations follow DB's concurrency contract: read entry points are
// lock-free snapshot captures and may run in parallel with anything;
// mutations are single-writer, and callers running several write
// transactions concurrently must serialize their Begin/Commit brackets.
// PutSteps is the one exception — called outside a transaction it owns its
// transactions and (on sharded stores) may be invoked from several
// goroutines at once.
type Store interface {
	Reader

	// Transactions.
	Begin() error
	Commit() error
	InTxn() bool
	Close() error

	// Snapshot captures a consistent read view (see Snapshot).
	Snapshot() (Snapshot, error)

	// StoreStats identifies the backing storage and aggregates its
	// counters (summed across shards on partitioned stores).
	StoreStats() (name string, st storage.Stats)

	// Schema definition.
	DefineMaterialClass(name, parent string) (ClassID, error)
	DefineAttr(name string, kind Kind) (AttrID, error)
	DefineStepClass(name string, attrs []AttrDef) (StepClassID, Version, error)
	DefineState(name string) (StateID, error)

	// Materials and sets.
	CreateMaterial(class, name, state string, validTime int64) (storage.OID, error)
	SetState(oid storage.OID, state string) error
	CreateMaterialSet(members []storage.OID) (storage.OID, error)

	// Steps.
	RecordStep(spec StepSpec) (storage.OID, error)
	PutSteps(specs []StepSpec) ([]storage.OID, error)
}

var (
	_ Store    = (*DB)(nil)
	_ Snapshot = (*Snap)(nil)
)

// StoreStats implements Store over the single storage manager.
func (db *DB) StoreStats() (string, storage.Stats) {
	return db.sm.Name(), db.sm.Stats()
}
