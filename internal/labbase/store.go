package labbase

import (
	"labflow/internal/storage"
)

// Store is the full LabBase surface consumed by the wire server, the
// deductive bridge, and the benchmark drivers. Both *DB (one storage
// manager) and the hash-partitioned *shard.DB (N storage managers behind
// one facade) implement it, so every layer above labbase is shard-agnostic:
// storage.OID stays the public object handle either way.
//
// Implementations follow DB's concurrency contract: read entry points may
// run in parallel, mutations are single-writer, and callers running several
// write transactions concurrently must serialize their Begin/Commit
// brackets. PutSteps is the one exception — called outside a transaction it
// owns its transactions and (on sharded stores) may be invoked from several
// goroutines at once.
type Store interface {
	// Transactions.
	Begin() error
	Commit() error
	InTxn() bool
	Close() error

	// StoreStats identifies the backing storage and aggregates its
	// counters (summed across shards on partitioned stores).
	StoreStats() (name string, st storage.Stats)

	// Schema.
	DefineMaterialClass(name, parent string) (ClassID, error)
	DefineAttr(name string, kind Kind) (AttrID, error)
	DefineStepClass(name string, attrs []AttrDef) (StepClassID, Version, error)
	DefineState(name string) (StateID, error)
	MaterialClasses() []string
	StepClasses() []string
	StepClassVersions(name string) ([][]string, error)
	States() []string

	// Materials and sets.
	CreateMaterial(class, name, state string, validTime int64) (storage.OID, error)
	LookupMaterial(name string) (storage.OID, bool)
	GetMaterial(oid storage.OID) (*Material, error)
	State(oid storage.OID) (string, error)
	SetState(oid storage.OID, state string) error
	MaterialsInState(state string) ([]storage.OID, error)
	CountInState(state string) (uint64, error)
	CountMaterials(class string) (uint64, error)
	CountSteps(class string) (uint64, error)
	ScanMaterials(class string, fn func(*Material) error) error
	ScanAllMaterials(fn func(*Material) error) error
	CreateMaterialSet(members []storage.OID) (storage.OID, error)
	SetMembers(oid storage.OID) ([]storage.OID, error)

	// Steps and history.
	RecordStep(spec StepSpec) (storage.OID, error)
	PutSteps(specs []StepSpec) ([]storage.OID, error)
	GetStep(oid storage.OID) (*Step, error)
	ScanSteps(class string, fn func(*Step) error) error
	History(oid storage.OID) ([]HistoryEntry, error)
	MostRecent(oid storage.OID, attr string) (Value, storage.OID, bool, error)
	MostRecentScan(oid storage.OID, attr string) (Value, storage.OID, bool, error)
	MostRecentAsOf(oid storage.OID, attr string, t int64) (Value, storage.OID, bool, error)
	AttrTimeline(oid storage.OID, attr string) ([]TimelineEntry, error)
	Dump() (DumpStats, error)
}

var _ Store = (*DB)(nil)

// StoreStats implements Store over the single storage manager.
func (db *DB) StoreStats() (string, storage.Stats) {
	return db.sm.Name(), db.sm.Stats()
}
