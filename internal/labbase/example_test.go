package labbase_test

import (
	"fmt"
	"log"

	"labflow/internal/labbase"
	"labflow/internal/storage"
	"labflow/internal/storage/memstore"
)

// Example shows the core LabBase workflow-tracking loop: define a schema,
// create a material, record steps, and query most-recent values.
func Example() {
	db, err := labbase.Open(memstore.Open("example"), labbase.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.Begin(); err != nil {
		log.Fatal(err)
	}
	if _, err := db.DefineMaterialClass("clone", ""); err != nil {
		log.Fatal(err)
	}
	if _, err := db.DefineState("active"); err != nil {
		log.Fatal(err)
	}
	clone, err := db.CreateMaterial("clone", "c1", "active", 1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.RecordStep(labbase.StepSpec{
		Class: "measure", ValidTime: 10,
		Materials: []storage.OID{clone},
		Attrs:     []labbase.AttrValue{{Name: "weight", Value: labbase.Float64(1.5)}},
	}); err != nil {
		log.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		log.Fatal(err)
	}

	v, _, ok, err := db.MostRecent(clone, "weight")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ok, v)
	// Output: true 1.5
}

// ExampleDB_MostRecent demonstrates valid-time semantics: a late-arriving
// step with an older valid time does not displace the current value.
func ExampleDB_MostRecent() {
	db, _ := labbase.Open(memstore.Open("ex"), labbase.DefaultOptions())
	defer db.Close()
	db.Begin()
	db.DefineMaterialClass("clone", "")
	m, _ := db.CreateMaterial("clone", "c", "", 0)
	record := func(vt int64, seq string) {
		db.RecordStep(labbase.StepSpec{
			Class: "sequence", ValidTime: vt, Materials: []storage.OID{m},
			Attrs: []labbase.AttrValue{{Name: "seq", Value: labbase.String(seq)}},
		})
	}
	record(10, "OLD")
	record(30, "CURRENT")
	record(20, "LATE-ARRIVAL") // inserted last, but valid time 20 < 30
	db.Commit()

	v, _, _, _ := db.MostRecent(m, "seq")
	asOf25, _, _, _ := db.MostRecentAsOf(m, "seq", 25)
	fmt.Println(v.Str, "/", asOf25.Str)
	// Output: CURRENT / LATE-ARRIVAL
}

// ExampleDB_DefineStepClass shows schema evolution by attribute set: a new
// attribute set under an existing class name becomes a new version.
func ExampleDB_DefineStepClass() {
	db, _ := labbase.Open(memstore.Open("ex"), labbase.DefaultOptions())
	defer db.Close()
	db.Begin()
	_, v1, _ := db.DefineStepClass("assay", []labbase.AttrDef{
		{Name: "result", Kind: labbase.KindFloat},
	})
	_, v2, _ := db.DefineStepClass("assay", []labbase.AttrDef{
		{Name: "result", Kind: labbase.KindFloat},
		{Name: "instrument", Kind: labbase.KindString},
	})
	_, again, _ := db.DefineStepClass("assay", []labbase.AttrDef{
		{Name: "result", Kind: labbase.KindFloat},
	})
	db.Commit()
	fmt.Println(v1, v2, again)
	// Output: 1 2 1
}
